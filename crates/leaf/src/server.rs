//! The leaf server lifecycle: serve → clean shutdown to shared memory →
//! fast restart (or disk recovery).

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use scuba_columnstore::{Row, RowBlock};
use scuba_diskstore::{DiskBackup, RecoveryStats, Throttle};
use scuba_obs::PhaseBreakdown;
use scuba_query::{execute, LeafQueryResult, Query};
use scuba_restart::{
    attach_from_shm, backup_to_shm_with, resolve_copy_threads, restore_from_shm_with, AttachReport,
    BackupReport, CopyOptions, LeafBackupState, LeafRestoreState, RestoreError, RestoreReport,
    TableBackupState, SHM_LAYOUT_VERSION,
};
use scuba_shmem::ShmNamespace;

use crate::compat;
use crate::config::{LeafConfig, RestoreMode, WriterCompat};
use crate::error::{LeafError, LeafResult};
use crate::persist::LeafStore;

/// Check the failpoint guarding entry into a lifecycle phase. `error`
/// plans surface as [`LeafError::Injected`] (the caller treats the leaf as
/// crashed); `abort` plans kill the process at the phase itself, which is
/// how the chaos tests stand a real death on each [`LeafPhase`].
fn phase_failpoint(site: &'static str) -> LeafResult<()> {
    if scuba_faults::check(site).is_some() {
        return Err(LeafError::Injected { site });
    }
    Ok(())
}

/// Coarse lifecycle phase of a leaf, deciding request admission (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafPhase {
    /// Serving adds and queries.
    Alive,
    /// Draining for shutdown (rejects new work).
    Preparing,
    /// Copying heap → shared memory.
    CopyingToShm,
    /// Restoring shared memory → heap (no adds, no queries).
    MemoryRecovery,
    /// Rebuilding from disk (adds and queries allowed; results partial).
    DiskRecovery,
    /// Attached to shared memory and serving; background workers are
    /// copying mapped tables to heap. Adds and queries allowed — ingest
    /// lands in fresh heap row blocks, queries read borrowed shm bytes.
    Hydrating,
    /// Process gone.
    Down,
}

impl LeafPhase {
    /// Phase name for errors and dashboards.
    pub fn name(self) -> &'static str {
        match self {
            LeafPhase::Alive => "ALIVE",
            LeafPhase::Preparing => "PREPARE",
            LeafPhase::CopyingToShm => "COPY_TO_SHM",
            LeafPhase::MemoryRecovery => "MEMORY_RECOVERY",
            LeafPhase::DiskRecovery => "DISK_RECOVERY",
            LeafPhase::Hydrating => "HYDRATING",
            LeafPhase::Down => "DOWN",
        }
    }

    /// May rows be added? (§4.3: disk recovery accepts adds, memory
    /// recovery does not. Hydration does: the attach already installed
    /// every table, and new rows go to fresh heap builders.)
    pub fn accepts_adds(self) -> bool {
        matches!(
            self,
            LeafPhase::Alive | LeafPhase::DiskRecovery | LeafPhase::Hydrating
        )
    }

    /// May queries run? (Same admission rule as adds.)
    pub fn accepts_queries(self) -> bool {
        matches!(
            self,
            LeafPhase::Alive | LeafPhase::DiskRecovery | LeafPhase::Hydrating
        )
    }

    /// Stable ordinal for the `leaf_phase` gauge (0 = ALIVE … 5 = DOWN,
    /// 6 = HYDRATING).
    pub fn index(self) -> u8 {
        match self {
            LeafPhase::Alive => 0,
            LeafPhase::Preparing => 1,
            LeafPhase::CopyingToShm => 2,
            LeafPhase::MemoryRecovery => 3,
            LeafPhase::DiskRecovery => 4,
            LeafPhase::Down => 5,
            LeafPhase::Hydrating => 6,
        }
    }
}

/// How a leaf came back up.
#[derive(Debug)]
pub enum RecoveryOutcome {
    /// Shared-memory restore succeeded (everything copied to heap).
    Memory(RestoreReport),
    /// Shared-memory *attach* succeeded ([`RestoreMode::TwoPhase`]): the
    /// leaf is serving over mapped segments and hydrating in background.
    /// The report's duration is the time to first query, not to full
    /// recovery — drive [`LeafServer::poll_hydration`] /
    /// [`LeafServer::finish_hydration`] to complete it.
    MemoryAttached(AttachReport),
    /// Fell back to (or was configured for) disk recovery; carries the
    /// reason and the disk recovery stats.
    Disk {
        /// Why memory recovery did not happen.
        reason: String,
        /// Read/translate breakdown of the disk path.
        stats: RecoveryStats,
    },
}

impl RecoveryOutcome {
    /// True if this was a fast (memory) recovery.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            RecoveryOutcome::Memory(_) | RecoveryOutcome::MemoryAttached(_)
        )
    }

    /// Wall-clock duration until the leaf accepted its first request.
    pub fn duration(&self) -> Duration {
        match self {
            RecoveryOutcome::Memory(r) => r.duration,
            RecoveryOutcome::MemoryAttached(r) => r.duration,
            RecoveryOutcome::Disk { stats, .. } => stats.read_duration + stats.translate_duration,
        }
    }
}

/// One hydrated row block coming back from a worker.
struct HydratedBlock {
    /// Table the block belongs to.
    table: String,
    /// The shm-backed block the worker started from (identity key for
    /// [`scuba_columnstore::Table::apply_block_patch`]).
    old: Arc<RowBlock>,
    /// Heap copy, or the deferred-CRC failure that makes the whole leaf
    /// fall back to disk.
    new: Result<RowBlock, String>,
}

/// Verify every mapped column's deferred RBC checksum, then copy the
/// block to heap. Runs on a worker thread; no store access.
fn hydrate_block(block: &RowBlock) -> Result<RowBlock, String> {
    for column in block.columns().iter().filter(|c| c.is_mapped()) {
        column.verify_checksum().map_err(|e| e.to_string())?;
    }
    Ok(block.to_heap())
}

/// Background worker pool converting mapped blocks to heap after an
/// attach. Results stream back over a channel; the server applies them
/// under its own `&mut` (the workers never touch the store).
#[derive(Debug)]
struct Hydrator {
    rx: mpsc::Receiver<HydratedBlock>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Blocks handed to workers whose results have not been applied yet.
    pending: usize,
}

impl Hydrator {
    /// Snapshot every mapped block and fan the copy work out over the
    /// resolved copy-thread count.
    fn spawn(store: &LeafStore, copy_threads: usize) -> Hydrator {
        let mut jobs: Vec<(String, Arc<RowBlock>)> = Vec::new();
        for table in store.map().iter() {
            for block in table.mapped_blocks() {
                jobs.push((table.name().to_owned(), block));
            }
        }
        let pending = jobs.len();
        let threads = resolve_copy_threads(copy_threads).min(pending.max(1));
        let (tx, rx) = mpsc::channel();
        let mut buckets: Vec<Vec<(String, Arc<RowBlock>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % threads].push(job);
        }
        let workers = buckets
            .into_iter()
            .map(|bucket| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for (table, old) in bucket {
                        let new = hydrate_block(&old);
                        if tx.send(HydratedBlock { table, old, new }).is_err() {
                            return; // server gone (crash/fallback); stop
                        }
                    }
                })
            })
            .collect();
        Hydrator {
            rx,
            workers,
            pending,
        }
    }
}

/// What a clean shutdown did.
#[derive(Debug)]
pub struct ShutdownSummary {
    /// Per-table final backup state (all `Done` on success).
    pub table_states: Vec<(String, TableBackupState)>,
    /// Rows that were still unsealed and got sealed during prepare.
    pub sealed_rows: usize,
    /// Dirty bytes flushed to disk during prepare (§4.1 synchronization).
    pub disk_synced_bytes: u64,
    /// The shared-memory copy report.
    pub backup: BackupReport,
}

/// One Scuba leaf server.
#[derive(Debug)]
pub struct LeafServer {
    config: LeafConfig,
    store: LeafStore,
    disk: DiskBackup,
    ns: ShmNamespace,
    phase: LeafPhase,
    /// `{shm_prefix}:{leaf_id}` — the `leaf` label on this server's
    /// metric series, unique per leaf within the process.
    obs_key: String,
    /// Background hydration pool, present only while `Hydrating`.
    hydrator: Option<Hydrator>,
    /// The `now` the leaf started with; stamps blocks if hydration has to
    /// fall back to disk recovery.
    hydrate_now: i64,
    /// Why hydration fell back to disk, if it did.
    hydration_fallback: Option<String>,
    /// Units the last memory recovery skipped as format-incompatible and
    /// recovered from disk instead (per-table fallback).
    skipped_units: Vec<String>,
}

impl LeafServer {
    /// Create an empty leaf (first boot; no recovery attempted).
    pub fn new(config: LeafConfig) -> LeafResult<LeafServer> {
        let disk = DiskBackup::open(&config.disk_root)?;
        let ns = ShmNamespace::new(&config.shm_prefix, config.leaf_id)?;
        let obs_key = format!("{}:{}", config.shm_prefix, config.leaf_id);
        let mut server = LeafServer {
            config,
            store: LeafStore::new(),
            disk,
            ns,
            phase: LeafPhase::Alive,
            obs_key,
            hydrator: None,
            hydrate_now: 0,
            hydration_fallback: None,
            skipped_units: Vec::new(),
        };
        server.set_phase(LeafPhase::Alive);
        Ok(server)
    }

    /// Record a phase edge: the admission-controlling field plus the
    /// per-leaf `leaf_phase` / `leaf_accepting_queries` gauges the
    /// dashboard feed reads. Every phase assignment goes through here.
    fn set_phase(&mut self, phase: LeafPhase) {
        self.phase = phase;
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_phase", &labels).set(i64::from(phase.index()));
            scuba_obs::labeled_gauge("leaf_accepting_queries", &labels)
                .set(i64::from(phase.accepts_queries()));
        }
        self.publish_memory_gauges();
    }

    /// Publish the heap/shm split (satellite of §4.4 accounting: bytes
    /// are either heap-resident or shm-resident, never both).
    fn publish_memory_gauges(&self) {
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_heap_bytes", &labels).set(self.memory_used() as i64);
            scuba_obs::labeled_gauge("leaf_shm_bytes", &labels).set(self.shm_resident() as i64);
            scuba_obs::labeled_gauge("leaf_hydration_pending_blocks", &labels)
                .set(self.hydrator.as_ref().map_or(0, |h| h.pending) as i64);
        }
    }

    /// Start a leaf process, recovering state — Figure 5(b)/Figure 7.
    /// Tries shared memory first (if enabled), falling back to disk on any
    /// problem. `now` stamps recovered blocks; `disk_throttle` optionally
    /// paces the disk read phase at a simulated device bandwidth.
    ///
    /// This wrapper owns the restart counters: every call moves
    /// `restarts_started`, and exactly one of `restarts_completed` /
    /// `restarts_failed` — the chaos soak asserts started = completed +
    /// failed after hundreds of waves.
    pub fn start(
        config: LeafConfig,
        now: i64,
        disk_throttle: Option<&Throttle>,
    ) -> LeafResult<(LeafServer, RecoveryOutcome)> {
        scuba_obs::counter!("restarts_started").inc();
        let started = std::time::Instant::now();
        match LeafServer::start_inner(config, now, disk_throttle) {
            Ok((server, outcome)) => {
                if scuba_obs::enabled() {
                    scuba_obs::counter!("restarts_completed").inc();
                    let labels = [("leaf", server.obs_key.as_str())];
                    scuba_obs::labeled_counter("leaf_recoveries_total", &labels).inc();
                    // Time to first query: the leaf accepts requests the
                    // moment start() returns — under TwoPhase that is
                    // attach cost, not full-restore cost.
                    scuba_obs::labeled_gauge("leaf_time_to_first_query_ns", &labels)
                        .set(started.elapsed().as_nanos().min(i64::MAX as u128) as i64);
                }
                Ok((server, outcome))
            }
            Err(e) => {
                scuba_obs::counter!("restarts_failed").inc();
                Err(e)
            }
        }
    }

    fn start_inner(
        config: LeafConfig,
        now: i64,
        disk_throttle: Option<&Throttle>,
    ) -> LeafResult<(LeafServer, RecoveryOutcome)> {
        let mut server = LeafServer::new(config)?;
        let mut state = LeafRestoreState::Init;

        if server.config.shm_recovery_enabled {
            state = state.transition(LeafRestoreState::MemoryRecovery)?;
            server.set_phase(LeafPhase::MemoryRecovery);
            phase_failpoint("leaf::phase::memory_recovery")?;
            let attempt = match server.config.restore_mode {
                RestoreMode::Full => restore_from_shm_with(
                    &mut server.store,
                    &server.ns,
                    SHM_LAYOUT_VERSION,
                    CopyOptions::with_threads(server.config.copy_threads),
                )
                .map(RecoveryOutcome::Memory),
                RestoreMode::TwoPhase => {
                    attach_from_shm(&mut server.store, &server.ns, SHM_LAYOUT_VERSION)
                        .map(RecoveryOutcome::MemoryAttached)
                }
            };
            match attempt {
                Ok(outcome) => {
                    state = state.transition(LeafRestoreState::Alive)?;
                    debug_assert_eq!(state, LeafRestoreState::Alive);
                    // Per-table fallback: units the protocol skipped as
                    // format-incompatible come back from disk — only
                    // those; every other table already restored from
                    // memory. (The paper's §4.3 conservatism is per-leaf;
                    // the self-describing layout narrows it per-table.)
                    let skipped = match &outcome {
                        RecoveryOutcome::Memory(r) => r.skipped.clone(),
                        RecoveryOutcome::MemoryAttached(r) => r.skipped.clone(),
                        RecoveryOutcome::Disk { .. } => Vec::new(),
                    };
                    if !skipped.is_empty() {
                        let (mut map, _stats) =
                            server.disk.recover_tables(&skipped, now, disk_throttle)?;
                        for (_, table) in map.take_tables() {
                            server.store.map_mut().insert(table);
                        }
                        scuba_obs::counter!("leaf_tables_disk_recovered").add(skipped.len() as u64);
                        server.skipped_units = skipped;
                    }
                    if matches!(outcome, RecoveryOutcome::MemoryAttached(_)) {
                        server.hydrate_now = now;
                        if server.store.map().mapped_bytes() > 0 {
                            // Phase two starts now, in background; the
                            // leaf serves over the mapped segments.
                            server.set_phase(LeafPhase::Hydrating);
                            phase_failpoint("leaf::phase::hydrating")?;
                            server.hydrator =
                                Some(Hydrator::spawn(&server.store, server.config.copy_threads));
                            server.publish_memory_gauges();
                            return Ok((server, outcome));
                        }
                    }
                    server.set_phase(LeafPhase::Alive);
                    return Ok((server, outcome));
                }
                Err(RestoreError::Fallback(fb)) => {
                    // Figure 5(b) "exception" edge: clear any partial
                    // restore and recover from disk.
                    state = state.transition(LeafRestoreState::DiskRecovery)?;
                    server.store = LeafStore::new();
                    let outcome = server.disk_recover(now, disk_throttle, fb.reason)?;
                    state = state.transition(LeafRestoreState::Alive)?;
                    debug_assert_eq!(state, LeafRestoreState::Alive);
                    return Ok((server, outcome));
                }
            }
        }
        // Memory recovery disabled.
        state = state.transition(LeafRestoreState::DiskRecovery)?;
        let outcome =
            server.disk_recover(now, disk_throttle, "memory recovery disabled".to_owned())?;
        state = state.transition(LeafRestoreState::Alive)?;
        debug_assert_eq!(state, LeafRestoreState::Alive);
        Ok((server, outcome))
    }

    fn disk_recover(
        &mut self,
        now: i64,
        throttle: Option<&Throttle>,
        reason: String,
    ) -> LeafResult<RecoveryOutcome> {
        self.set_phase(LeafPhase::DiskRecovery);
        phase_failpoint("leaf::phase::disk_recovery")?;
        let (map, stats) = self.disk.recover(now, throttle)?;
        self.store = LeafStore::from_map(map);
        self.set_phase(LeafPhase::Alive);
        Ok(RecoveryOutcome::Disk { reason, stats })
    }

    /// True while background hydration is still converting mapped blocks
    /// to heap.
    pub fn is_hydrating(&self) -> bool {
        self.hydrator.is_some()
    }

    /// Blocks handed to hydration workers whose results have not been
    /// applied yet.
    pub fn hydration_pending(&self) -> usize {
        self.hydrator.as_ref().map_or(0, |h| h.pending)
    }

    /// Why hydration fell back to disk recovery, if it did.
    pub fn hydration_fallback_reason(&self) -> Option<&str> {
        self.hydration_fallback.as_deref()
    }

    /// Units the last memory recovery skipped as format-incompatible and
    /// disk-recovered individually (empty when everything came back
    /// through shared memory).
    pub fn skipped_units(&self) -> &[String] {
        &self.skipped_units
    }

    /// Override which image format the next [`Self::shutdown_to_shm`]
    /// writes — how upgrade drills turn a running leaf into a simulated
    /// pre-upgrade binary right before its wave.
    pub fn set_writer_compat(&mut self, compat: WriterCompat) {
        self.config.writer_compat = compat;
    }

    /// Apply any hydrated blocks the workers have finished, without
    /// blocking. Returns the number of blocks still pending; 0 means
    /// hydration is complete (or fell back to disk) and the leaf is
    /// `Alive`. Callers drive this from their event loop — queries take
    /// `&self`, so block swaps happen only here.
    pub fn poll_hydration(&mut self) -> LeafResult<usize> {
        loop {
            let received = match self.hydrator.as_ref() {
                None => return Ok(0),
                Some(h) => h.rx.try_recv(),
            };
            match received {
                Ok(msg) => self.apply_hydrated(msg)?,
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // A worker died (panic) with results outstanding.
                    self.fall_back_from_hydration(
                        "hydration workers exited with blocks outstanding".to_owned(),
                    )?;
                    return Ok(0);
                }
            }
            if self.hydrator.is_none() {
                return Ok(0);
            }
        }
        Ok(self.hydration_pending())
    }

    /// Block until hydration is complete (or has fallen back to disk).
    /// The leaf is `Alive` with zero shm-resident bytes afterwards.
    pub fn finish_hydration(&mut self) -> LeafResult<()> {
        loop {
            let received = match self.hydrator.as_ref() {
                None => return Ok(()),
                Some(h) => h.rx.recv(),
            };
            match received {
                Ok(msg) => self.apply_hydrated(msg)?,
                Err(_) => {
                    return self.fall_back_from_hydration(
                        "hydration workers exited with blocks outstanding".to_owned(),
                    );
                }
            }
        }
    }

    /// Swap one hydrated block into its table (or trigger the disk
    /// fallback on a deferred-CRC failure).
    fn apply_hydrated(&mut self, msg: HydratedBlock) -> LeafResult<()> {
        match msg.new {
            Err(reason) => {
                self.fall_back_from_hydration(format!("hydrating table {:?}: {reason}", msg.table))
            }
            Ok(block) => {
                if let Some(t) = self.store.map_mut().get_mut(&msg.table) {
                    // False means the block left the table meanwhile
                    // (cannot happen today: expire is blocked during
                    // hydration) — the heap copy is simply discarded.
                    t.apply_block_patch(&msg.old, Arc::new(block));
                }
                scuba_obs::counter!("hydrated_blocks_total").inc();
                let h = self.hydrator.as_mut().expect("hydrator present");
                h.pending -= 1;
                if h.pending == 0 {
                    let h = self.hydrator.take().expect("hydrator present");
                    drop(h.rx);
                    for worker in h.workers {
                        let _ = worker.join();
                    }
                    self.set_phase(LeafPhase::Alive);
                } else {
                    self.publish_memory_gauges();
                }
                Ok(())
            }
        }
        // `msg.old` drops here — when the last mapped reference to a
        // segment goes, the SegmentView unlinks it.
    }

    /// §4.3 conservatism applied to phase two: any hydration failure
    /// (torn payload caught by the deferred CRC, a dead worker) condemns
    /// the whole attach — throw away the mapped store and rebuild from
    /// disk. Rows ingested during hydration share crash semantics: only
    /// the synced prefix survives.
    fn fall_back_from_hydration(&mut self, reason: String) -> LeafResult<()> {
        if let Some(h) = self.hydrator.take() {
            drop(h.rx); // workers' sends now fail; they exit
            for worker in h.workers {
                let _ = worker.join();
            }
        }
        scuba_obs::counter!("hydration_fallbacks").inc();
        self.hydration_fallback = Some(reason.clone());
        // Dropping the store releases the last mapped references; the
        // SegmentViews unlink their segments.
        self.store = LeafStore::new();
        self.disk_recover(self.hydrate_now, None, reason)?;
        Ok(())
    }

    /// Current phase.
    pub fn phase(&self) -> LeafPhase {
        self.phase
    }

    /// The `leaf` label on this server's metric series
    /// (`{shm_prefix}:{leaf_id}`), for dashboards that read the gauges.
    pub fn obs_key(&self) -> &str {
        &self.obs_key
    }

    /// Prometheus text exposition of the process-wide metrics — what this
    /// leaf's scrape endpoint would serve.
    pub fn metrics_prometheus(&self) -> String {
        scuba_obs::prometheus_text()
    }

    /// JSON snapshot of the process-wide metrics.
    pub fn metrics_json(&self) -> String {
        scuba_obs::json_snapshot()
    }

    /// This leaf's shared-memory namespace.
    pub fn namespace(&self) -> &ShmNamespace {
        &self.ns
    }

    /// The leaf's configuration.
    pub fn config(&self) -> &LeafConfig {
        &self.config
    }

    /// Heap bytes used. Shm-backed column bytes are *not* counted here —
    /// they live in the mapped segments and are reported separately by
    /// [`LeafServer::shm_resident`], so a hydrating leaf never
    /// double-counts a byte that exists in both places mid-swap.
    pub fn memory_used(&self) -> usize {
        use scuba_restart::ShmPersistable;
        self.store.heap_bytes()
    }

    /// Bytes resident in attached shared-memory segments (column buffers
    /// still awaiting hydration). Zero except during `Hydrating`.
    pub fn shm_resident(&self) -> usize {
        self.store.map().mapped_bytes()
    }

    /// Free memory, as reported to tailers for two-random-choice placement
    /// (§2: the tailer "asks them both for their current state and how
    /// much free memory they have"). Both heap- and shm-resident bytes
    /// count against capacity: the mapped pages are this leaf's to keep.
    pub fn free_memory(&self) -> usize {
        self.config
            .memory_capacity
            .saturating_sub(self.memory_used())
            .saturating_sub(self.shm_resident())
    }

    /// Total rows held.
    pub fn total_rows(&self) -> usize {
        self.store.map().total_rows()
    }

    /// The store (read access for tests and tools).
    pub fn store(&self) -> &LeafStore {
        &self.store
    }

    /// Mutable store access for benchmarks that drive the restart
    /// protocol directly, bypassing the lifecycle. Not for normal use:
    /// it skips the phase gating.
    #[doc(hidden)]
    pub fn store_mut_for_bench(&mut self) -> &mut LeafStore {
        &mut self.store
    }

    /// Add a batch of rows: into memory and appended to the disk backup
    /// (buffered; durable at the next sync).
    pub fn add_rows(&mut self, table: &str, rows: &[Row], now: i64) -> LeafResult<()> {
        if !self.phase.accepts_adds() {
            return Err(LeafError::Unavailable {
                operation: "add rows",
                phase: self.phase.name(),
            });
        }
        self.store.append_rows(table, rows, now)?;
        self.disk.append(table, rows)?;
        Ok(())
    }

    /// Execute a query against this leaf's fraction of the table.
    pub fn query(&self, query: &Query) -> LeafResult<LeafQueryResult> {
        if !self.phase.accepts_queries() {
            return Err(LeafError::Unavailable {
                operation: "query",
                phase: self.phase.name(),
            });
        }
        match self.store.map().get(&query.table) {
            None => Ok(LeafQueryResult::empty()),
            Some(t) => Ok(execute(t, query)?),
        }
    }

    /// Apply retention limits (blocked during shutdown: Figure 5(c) kills
    /// deletes at Prepare).
    pub fn expire(&mut self, now: i64) -> LeafResult<usize> {
        if !matches!(self.phase, LeafPhase::Alive) {
            return Err(LeafError::Unavailable {
                operation: "delete expired data",
                phase: self.phase.name(),
            });
        }
        Ok(self.store.map_mut().expire_all(self.config.retention, now))
    }

    /// Flush buffered disk appends and fsync.
    pub fn sync_disk(&mut self) -> LeafResult<u64> {
        Ok(self.disk.sync()?)
    }

    /// Clean shutdown via shared memory — Figures 5(a), 5(c), and 6.
    ///
    /// Walks the leaf through `Alive → CopyToShm → Exit` and every table
    /// through `Alive → Prepare → CopyToShm → Done`: stop accepting work,
    /// seal unsealed rows, flush the disk backup, copy everything into
    /// shared memory, commit the valid bit. On success the server is
    /// `Down` and holds no data; the replacement process recovers it with
    /// [`LeafServer::start`].
    pub fn shutdown_to_shm(&mut self, now: i64) -> LeafResult<ShutdownSummary> {
        if self.phase != LeafPhase::Alive {
            return Err(LeafError::Unavailable {
                operation: "shut down",
                phase: self.phase.name(),
            });
        }
        let mut leaf_state = LeafBackupState::Alive;

        // PREPARE (Figure 5(c)): reject new requests, kill deletes, wait
        // for in-flight adds/queries (synchronous here), flush to disk.
        self.set_phase(LeafPhase::Preparing);
        phase_failpoint("leaf::phase::preparing")?;
        let mut table_states: Vec<(String, TableBackupState)> = self
            .store
            .map()
            .names()
            .map(|n| (n.to_owned(), TableBackupState::Alive))
            .collect();
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::Prepare)?;
        }
        let sealed_rows = self
            .store
            .map()
            .iter()
            .map(|t| t.unsealed_rows())
            .sum::<usize>();
        self.store.seal_all(now)?;
        let disk_synced_bytes = self.disk.sync()?;

        // COPY TO SHM (Figures 5(a) and 6).
        leaf_state = leaf_state.transition(LeafBackupState::CopyToShm)?;
        self.set_phase(LeafPhase::CopyingToShm);
        phase_failpoint("leaf::phase::copying")?;
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::CopyToShm)?;
        }
        let backup = match self.config.writer_compat {
            WriterCompat::Current => backup_to_shm_with(
                &mut self.store,
                &self.ns,
                SHM_LAYOUT_VERSION,
                CopyOptions::with_threads(self.config.copy_threads),
            )
            .map_err(|e| LeafError::Backup(e.to_string()))?,
            compat => self.backup_as_old_writer(compat)?,
        };
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::Done)?;
        }

        // EXIT. A fault here stands on the narrowest ledge: the valid bit
        // is already committed, so a death is a *successful* shutdown and
        // the replacement memory-restores.
        phase_failpoint("leaf::phase::exit")?;
        leaf_state = leaf_state.transition(LeafBackupState::Exit)?;
        debug_assert_eq!(leaf_state, LeafBackupState::Exit);
        self.set_phase(LeafPhase::Down);

        Ok(ShutdownSummary {
            table_states,
            sealed_rows,
            disk_synced_bytes,
            backup,
        })
    }

    /// Shutdown copy step for a simulated pre-upgrade writer binary:
    /// drain the store's tables and install an old-format image via
    /// [`crate::compat`], so the *next* start — under the current binary —
    /// has to prove a cross-version memory restore.
    fn backup_as_old_writer(&mut self, compat: WriterCompat) -> LeafResult<BackupReport> {
        let start = Instant::now();
        let initial_footprint = self.store.map().heap_bytes();
        let tables: Vec<_> = self.store.map_mut().take_tables().into_values().collect();
        let bytes_copied = match compat {
            WriterCompat::LegacyV1 => compat::install_legacy_v1_image(&self.ns, &tables),
            WriterCompat::AgedV2 => compat::install_aged_v2_image(
                &self.ns,
                &tables,
                &compat::AgedImageOptions {
                    skippable_stranger: true,
                    required_stranger: false,
                },
            ),
            WriterCompat::Current => unreachable!("Current is handled by the normal backup path"),
        }
        .map_err(|e| LeafError::Backup(e.to_string()))?;
        scuba_obs::counter!("leaf_old_writer_backups").inc();

        // One manifest per table, one prelude per block, one chunk per
        // column — same accounting as the real writer.
        let chunks: usize = tables
            .iter()
            .map(|t| {
                1 + t
                    .blocks()
                    .iter()
                    .map(|b| 1 + b.columns().len())
                    .sum::<usize>()
            })
            .sum();
        let duration = start.elapsed();
        Ok(BackupReport {
            units: tables.len(),
            chunks,
            bytes_copied: bytes_copied as u64,
            duration,
            peak_footprint: initial_footprint + bytes_copied,
            initial_footprint,
            segment_names: (0..tables.len())
                .map(|i| self.ns.table_segment_name(i))
                .collect(),
            threads: 1,
            phases: PhaseBreakdown {
                op: "backup",
                phases: Vec::new(),
                total: duration,
                bytes: bytes_copied as u64,
                chunks: chunks as u64,
                units: tables.len(),
                threads: 1,
                complete: true,
                tables: Vec::new(),
            },
        })
    }

    /// Crash the leaf: drop everything without copying to shared memory.
    /// The next start will find no valid bit and recover from disk — the
    /// §4 crash path.
    pub fn crash(&mut self) {
        // A crash mid-hydration abandons the workers: drop the receiver
        // so their sends fail and they exit; their mapped references (and
        // the store's) drop, unlinking the segments.
        if let Some(h) = self.hydrator.take() {
            drop(h.rx);
            for worker in h.workers {
                let _ = worker.join();
            }
        }
        self.store = LeafStore::new();
        self.set_phase(LeafPhase::Down);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::table::RetentionLimits;
    use scuba_columnstore::Value;
    use scuba_query::{AggSpec, GroupKey};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    fn test_config(tag: &str) -> (LeafConfig, PathBuf) {
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("scuba_leaf_{tag}_{}_{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LeafConfig::new(id, format!("leafsrv{}", std::process::id()), &dir);
        (cfg, dir)
    }

    struct Cleanup(ShmNamespace, PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            self.0.unlink_all(16);
            let _ = std::fs::remove_dir_all(&self.1);
        }
    }

    fn fill(server: &mut LeafServer, rows: i64) {
        let batch: Vec<Row> = (0..rows)
            .map(|i| {
                Row::at(i)
                    .with("sev", if i % 10 == 0 { "error" } else { "info" })
                    .with("code", i % 7)
            })
            .collect();
        server.add_rows("logs", &batch, 0).unwrap();
    }

    #[test]
    fn serve_add_and_query() {
        let (cfg, dir) = test_config("serve");
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        assert_eq!(s.total_rows(), 100);
        let q = Query::new("logs", 0, 100)
            .group_by("sev")
            .aggregates(vec![AggSpec::Count]);
        let r = s.query(&q).unwrap();
        assert_eq!(
            r.groups[&GroupKey::Str("error".into())][0].finish(),
            Value::Int(10)
        );
        // Unknown table: empty, not an error.
        let r = s.query(&Query::new("nope", 0, 100)).unwrap();
        assert_eq!(r.rows_matched, 0);
    }

    #[test]
    fn shm_restart_cycle_preserves_data_and_is_fast_path() {
        let (cfg, dir) = test_config("cycle");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);

        let summary = s.shutdown_to_shm(10).unwrap();
        assert_eq!(s.phase(), LeafPhase::Down);
        assert_eq!(summary.sealed_rows, 1000);
        assert!(summary
            .table_states
            .iter()
            .all(|(_, st)| *st == TableBackupState::Done));
        assert!(summary.backup.bytes_copied > 0);
        assert_eq!(s.total_rows(), 0);
        drop(s); // old process exits

        let (s2, outcome) = LeafServer::start(cfg, 20, None).unwrap();
        assert!(outcome.is_memory(), "{outcome:?}");
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.total_rows(), 1000);
        let r = s2.query(&Query::new("logs", 0, 2000)).unwrap();
        assert_eq!(r.rows_matched, 1000);
    }

    #[test]
    fn crash_recovers_from_disk() {
        let (cfg, dir) = test_config("crash");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 500);
        s.sync_disk().unwrap();
        s.crash(); // no shared-memory copy
        drop(s);

        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        match &outcome {
            RecoveryOutcome::Disk { reason, stats } => {
                assert!(reason.contains("metadata unavailable"), "{reason}");
                assert_eq!(stats.rows, 500);
            }
            other => panic!("expected disk recovery, got {other:?}"),
        }
        assert_eq!(s2.total_rows(), 500);
    }

    #[test]
    fn crash_loses_unsynced_tail_only() {
        let (cfg, dir) = test_config("tail");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 300);
        s.sync_disk().unwrap();
        // 50 more rows, never synced: these are the "few thousand rows"
        // §4.1 accepts losing. BufWriter may or may not have flushed them;
        // a crash loses at most the buffered tail.
        let extra: Vec<Row> = (300..350).map(Row::at).collect();
        s.add_rows("logs", &extra, 0).unwrap();
        s.crash();
        drop(s);
        let (s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        let n = s2.total_rows();
        assert!((300..=350).contains(&n), "recovered {n} rows");
    }

    #[test]
    fn shm_recovery_disabled_goes_to_disk() {
        let (mut cfg, dir) = test_config("disabled");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        cfg.shm_recovery_enabled = false;
        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        match outcome {
            RecoveryOutcome::Disk { reason, .. } => {
                assert!(reason.contains("disabled"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s2.total_rows(), 100);
    }

    #[test]
    fn requests_rejected_while_down() {
        let (cfg, dir) = test_config("down");
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 10);
        s.shutdown_to_shm(0).unwrap();
        assert!(matches!(
            s.add_rows("logs", &[Row::at(1)], 0),
            Err(LeafError::Unavailable { .. })
        ));
        assert!(s.query(&Query::new("logs", 0, 10)).is_err());
        assert!(s.expire(0).is_err());
        assert!(s.shutdown_to_shm(0).is_err()); // double shutdown
                                                // Clean up shm left by the successful shutdown.
        s.namespace().unlink_all(4);
    }

    #[test]
    fn free_memory_reporting() {
        let (mut cfg, dir) = test_config("mem");
        cfg.memory_capacity = 1 << 20;
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        let before = s.free_memory();
        assert_eq!(before, 1 << 20);
        fill(&mut s, 1000);
        assert!(s.free_memory() < before);
        assert_eq!(s.free_memory(), (1 << 20) - s.memory_used());
    }

    #[test]
    fn expire_applies_retention() {
        let (mut cfg, dir) = test_config("exp");
        cfg.retention = RetentionLimits {
            max_age_secs: Some(50),
            max_bytes: None,
        };
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100); // times 0..99
        s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        // now = 200: whole block's max_time (99) < 150 cutoff -> dropped.
        let dropped = s.expire(200).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(s.total_rows(), 0);
    }

    #[test]
    fn disk_throttle_paces_recovery() {
        use scuba_diskstore::Throttle;
        let (cfg, dir) = test_config("throttle");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 2000);
        s.sync_disk().unwrap();
        let on_disk = {
            let b = scuba_diskstore::DiskBackup::open(&cfg.disk_root).unwrap();
            b.size_bytes().unwrap()
        };
        s.crash();
        drop(s);
        // Throttle the read phase to ~4x the file size per second: the
        // read alone must take at least ~1/4 s.
        let throttle = Throttle::new((on_disk * 4).max(1));
        let started = std::time::Instant::now();
        let (s2, outcome) = LeafServer::start(cfg, 0, Some(&throttle)).unwrap();
        assert!(!outcome.is_memory());
        assert_eq!(s2.total_rows(), 2000);
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(200),
            "throttle had no effect: {:?}",
            started.elapsed()
        );
    }

    /// Serializes the two-phase tests: they assert on the process-wide
    /// [`scuba_shmem::view_unlink_count`], and every hydration completing
    /// in another test would move it.
    static HYDRATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Order-insensitive, backing-insensitive digest of a query result.
    fn result_fingerprint(r: &LeafQueryResult) -> (u64, Vec<(String, Vec<Value>)>) {
        let mut groups: Vec<(String, Vec<Value>)> = r
            .groups
            .iter()
            .map(|(k, aggs)| (format!("{k:?}"), aggs.iter().map(|a| a.finish()).collect()))
            .collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        (r.rows_matched, groups)
    }

    #[test]
    fn two_phase_attach_serves_identical_results_before_hydration() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("twophase");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        let q = Query::new("logs", 0, 2000)
            .group_by("sev")
            .aggregates(vec![AggSpec::Count]);
        let expected = result_fingerprint(&s.query(&q).unwrap());
        s.shutdown_to_shm(10).unwrap();
        drop(s);

        let (mut s2, outcome) = LeafServer::start(cfg, 20, None).unwrap();
        assert!(outcome.is_memory());
        let rep = match outcome {
            RecoveryOutcome::MemoryAttached(rep) => rep,
            other => panic!("expected attach, got {other:?}"),
        };
        // Acceptance: attach performs zero per-value heap copies. The
        // footprint delta is block/schema metadata only — every column
        // buffer stays mapped.
        assert!(
            rep.heap_bytes_copied < 1024,
            "attach copied column bytes: {}",
            rep.heap_bytes_copied
        );
        assert!(rep.shm_bytes > 0);
        assert!(s2
            .store()
            .map()
            .iter()
            .flat_map(|t| t.blocks().iter())
            .all(|b| b.columns().iter().all(|c| c.is_mapped())));
        assert_eq!(s2.phase(), LeafPhase::Hydrating);
        assert!(s2.is_hydrating());
        assert!(s2.shm_resident() > 0);

        // Acceptance: a query over the shm-backed table is byte-identical
        // to the same query after hydration.
        let over_shm = result_fingerprint(&s2.query(&q).unwrap());
        assert_eq!(over_shm, expected);

        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert!(!s2.is_hydrating());
        assert_eq!(s2.shm_resident(), 0);
        assert!(s2.hydration_fallback_reason().is_none());
        let over_heap = result_fingerprint(&s2.query(&q).unwrap());
        assert_eq!(over_heap, expected);
        assert_eq!(s2.total_rows(), 1000);
    }

    #[test]
    fn segment_unlinked_exactly_once_and_never_while_read() {
        use scuba_shmem::{view_unlink_count, ShmSegment};
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("seglife");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 200);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        let seg_name = s2.namespace().table_segment_name(0);
        assert!(ShmSegment::exists(&seg_name));

        // A query snapshot: a cloned handle to a mapped block, held across
        // the table's hydration (and hypothetical drop).
        let held: Arc<RowBlock> =
            Arc::clone(&s2.store().map().get("logs").unwrap().mapped_blocks()[0]);
        let before = view_unlink_count();

        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.shm_resident(), 0);
        // The reader still borrows the mapping: not unlinked yet.
        assert!(
            ShmSegment::exists(&seg_name),
            "segment unlinked while a reader held it"
        );
        assert_eq!(view_unlink_count(), before);
        // The mapped bytes are still readable through the held block.
        assert_eq!(held.decode_rows().unwrap().len(), 200);

        drop(held); // last mapped reference
        assert!(!ShmSegment::exists(&seg_name));
        assert_eq!(view_unlink_count(), before + 1, "unlinked more than once");
    }

    #[test]
    fn hydration_crc_mismatch_falls_back_to_disk() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydcrc");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        s.shutdown_to_shm(0).unwrap(); // syncs disk before the copy
        drop(s);

        // Corrupt a payload byte deep in the table segment — the middle
        // of the largest column chunk, found by walking the TLV frames.
        // Attach's structural checks cannot see it; the deferred CRC at
        // hydration must.
        let ns = scuba_shmem::ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        let mut seg = scuba_shmem::ShmSegment::open(&ns.table_segment_name(0)).unwrap();
        let buf = seg.as_mut_slice();
        use scuba_restart::framing::{decode_header_v2, FRAME_HEADER_V2, TAG_END};
        let mut pos = 0usize;
        let mut fattest = (0usize, 0usize);
        loop {
            let (desc, len, _crc) = decode_header_v2(&buf[pos..pos + FRAME_HEADER_V2]);
            if desc.tag == TAG_END {
                break;
            }
            let payload = pos + FRAME_HEADER_V2;
            if desc.tag == crate::persist::TAG_COLUMN && len as usize > fattest.1 {
                fattest = (payload, len as usize);
            }
            pos = payload + len as usize;
        }
        assert!(fattest.1 > 0, "no column chunk found");
        // Flip mid-way through the RBC *data region* (offsets read from
        // the RBC header) so only the deferred payload CRC can tell.
        let rbc = &mut buf[fattest.0..fattest.0 + fattest.1];
        let data_off = u64::from_le_bytes(rbc[48..56].try_into().unwrap()) as usize;
        let footer_off = u64::from_le_bytes(rbc[56..64].try_into().unwrap()) as usize;
        rbc[(data_off + footer_off) / 2] ^= 0xFF;
        drop(seg);

        let (mut s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(
            matches!(outcome, RecoveryOutcome::MemoryAttached(_)),
            "attach should not notice payload corruption: {outcome:?}"
        );
        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        let reason = s2.hydration_fallback_reason().expect("fallback recorded");
        assert!(reason.contains("checksum"), "{reason}");
        // Disk had everything: full recovery despite the torn segment.
        assert_eq!(s2.total_rows(), 1000);
        assert_eq!(s2.shm_resident(), 0);
    }

    #[test]
    fn ingest_lands_in_heap_during_hydration() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydingest");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 500);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        assert_eq!(s2.phase(), LeafPhase::Hydrating);
        // Ingest is admitted mid-hydration and goes to fresh heap blocks.
        let heap_before = s2.memory_used();
        let extra: Vec<Row> = (500..600).map(|i| Row::at(i).with("sev", "late")).collect();
        s2.add_rows("logs", &extra, 30).unwrap();
        assert!(s2.memory_used() > heap_before);
        // Deletes stay blocked until hydration completes (same Figure 5(c)
        // conservatism as shutdown).
        assert!(s2.expire(1000).is_err());
        // Queries see old (mapped) and new (heap) rows together.
        let r = s2.query(&Query::new("logs", 0, 1000)).unwrap();
        assert_eq!(r.rows_matched, 600);

        s2.finish_hydration().unwrap();
        assert_eq!(s2.total_rows(), 600);
        assert!(s2.expire(0).is_ok());
    }

    #[test]
    fn memory_gauges_split_heap_and_shm() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydmem");
        cfg.restore_mode = RestoreMode::TwoPhase;
        cfg.memory_capacity = 8 << 20;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        // Mid-hydration: every column byte is shm-resident; heap holds
        // only block/schema metadata. No byte counted twice.
        let shm_mid = s2.shm_resident();
        let heap_mid = s2.memory_used();
        assert!(shm_mid > 0);
        assert!(
            heap_mid < 1024,
            "column bytes on heap after attach: {heap_mid}"
        );
        assert_eq!(s2.free_memory(), (8 << 20) - shm_mid - heap_mid);

        s2.finish_hydration().unwrap();
        // After: the same column bytes are heap-resident, shm is empty —
        // the total footprint is unchanged.
        assert_eq!(s2.shm_resident(), 0);
        assert_eq!(s2.memory_used(), shm_mid + heap_mid);
        assert_eq!(s2.free_memory(), (8 << 20) - shm_mid - heap_mid);
    }

    #[test]
    fn poll_hydration_drains_incrementally() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydpoll");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        // Several sealed blocks so hydration has multiple results.
        for epoch in 0..4i64 {
            let rows: Vec<Row> = (0..100).map(|i| Row::at(epoch * 100 + i)).collect();
            s.add_rows("logs", &rows, 0).unwrap();
            s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        }
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        assert_eq!(s2.hydration_pending(), 4);
        // Poll until done; each poll applies whatever the workers
        // finished without blocking.
        while s2.poll_hydration().unwrap() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.total_rows(), 400);
        assert_eq!(s2.shm_resident(), 0);
    }

    #[test]
    fn empty_leaf_attach_goes_straight_to_alive() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydempty");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        s.shutdown_to_shm(0).unwrap();
        drop(s);
        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(matches!(outcome, RecoveryOutcome::MemoryAttached(_)));
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert!(!s2.is_hydrating());
    }

    #[test]
    fn second_start_after_memory_recovery_uses_disk() {
        // The valid bit is consumed by the first restore; a second start
        // (e.g. crash right after recovery) must go to disk.
        let (cfg, dir) = test_config("second");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 50);
        s.shutdown_to_shm(0).unwrap();
        let (mut s2, o1) = LeafServer::start(cfg.clone(), 0, None).unwrap();
        assert!(o1.is_memory());
        s2.crash();
        drop(s2);
        let (s3, o2) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(!o2.is_memory());
        assert_eq!(s3.total_rows(), 50);
    }
}
