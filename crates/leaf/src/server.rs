//! The leaf server lifecycle: serve → clean shutdown to shared memory →
//! fast restart (or disk recovery).

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use scuba_columnstore::{Row, RowBlock, Table};
use scuba_diskstore::{rowformat, DiskBackup, RecoveryStats, Throttle};
use scuba_obs::PhaseBreakdown;
use scuba_query::{execute_vectorized, LeafQueryResult, Query};
use scuba_restart::{
    attach_from_shm, backup_to_shm_with, read_wal, resolve_copy_threads, restore_from_shm_with,
    AttachReport, BackupReport, CopyOptions, LeafBackupState, LeafRestoreState, RestoreError,
    RestoreReport, TableBackupState, WalWriter, SHM_LAYOUT_VERSION,
};
use scuba_shmem::{LeafMetadata, ShmNamespace};

use crate::checkpoint::{snapshot_tables, CheckpointJob, CheckpointOutcome, CheckpointStats};
use crate::checkpoint::{Checkpointer, SEG_FLAG_CHECKPOINT};
use crate::compat;
use crate::config::{HydrationMode, LeafConfig, RestoreMode, WriterCompat};
use crate::error::{LeafError, LeafResult};
use crate::persist::LeafStore;

/// WAL file name inside `disk_root`. The disk backup only reads
/// `*.rows` files during recovery, so the log can live alongside them.
pub const WAL_FILE: &str = "leaf.wal";

/// Check the failpoint guarding entry into a lifecycle phase. `error`
/// plans surface as [`LeafError::Injected`] (the caller treats the leaf as
/// crashed); `abort` plans kill the process at the phase itself, which is
/// how the chaos tests stand a real death on each [`LeafPhase`].
fn phase_failpoint(site: &'static str) -> LeafResult<()> {
    if scuba_faults::check(site).is_some() {
        return Err(LeafError::Injected { site });
    }
    Ok(())
}

/// WAL payload tag: an ingest batch.
const WAL_TAG_BATCH: u8 = 1;
/// WAL payload tag: a sync-coverage anchor (see [`encode_sync_anchor`]).
const WAL_TAG_SYNC: u8 = 2;

/// One decoded WAL record: a single ingest batch with its dedup anchor.
struct WalBatch {
    /// Destination table.
    table: String,
    /// The table's row count immediately *before* the batch was applied —
    /// the idempotence anchor: replay skips the record when the restored
    /// table already covers it, appends when it lines up exactly, and
    /// declares the image inconsistent otherwise.
    start_rows: u64,
    /// The batch itself.
    rows: Vec<Row>,
}

/// Encode one ingest batch as a WAL record payload:
/// `tag u8 | name_len u16 | name | start_rows u64 | n_rows u32 |
/// rowformat records`.
fn encode_wal_batch(table: &str, start_rows: u64, rows: &[Row]) -> Vec<u8> {
    let name = table.as_bytes();
    let mut buf = Vec::with_capacity(15 + name.len() + rows.len() * 16);
    buf.push(WAL_TAG_BATCH);
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(name);
    buf.extend_from_slice(&start_rows.to_le_bytes());
    buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        rowformat::write_record(row, &mut buf);
    }
    buf
}

/// Encode a sync-coverage anchor: after a successful full disk sync, each
/// table's durable log provably holds its first `rows` in-memory rows in
/// exactly the first `bytes` file bytes. Crash recovery uses the *last*
/// anchor to bound the disk-coverage reconciliation scan to the file
/// suffix written since. Payload:
/// `tag u8 | n u32 | per table: name_len u16 | name | rows u64 | bytes u64`.
fn encode_sync_anchor(entries: &[(String, u64, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + entries.len() * 40);
    buf.push(WAL_TAG_SYNC);
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, rows, bytes) in entries {
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&rows.to_le_bytes());
        buf.extend_from_slice(&bytes.to_le_bytes());
    }
    buf
}

/// A decoded WAL payload.
enum WalRecord {
    /// An ingest batch to replay.
    Batch(WalBatch),
    /// A sync-coverage anchor: per-table `(rows, bytes)` disk coverage.
    SyncAnchor(Vec<(String, u64, u64)>),
}

/// Decode a WAL record payload by its leading tag. The outer frame's CRC
/// already matched, so any structural problem here is a logic error worth
/// failing loudly on — the caller answers with a disk fallback, never a
/// partial apply.
fn decode_wal_record(payload: &[u8]) -> Result<WalRecord, String> {
    match payload.first() {
        Some(&WAL_TAG_BATCH) => decode_wal_batch(&payload[1..]).map(WalRecord::Batch),
        Some(&WAL_TAG_SYNC) => decode_sync_anchor(&payload[1..]).map(WalRecord::SyncAnchor),
        Some(&tag) => Err(format!("unknown wal record tag {tag}")),
        None => Err("empty wal record".to_owned()),
    }
}

/// Decode a sync-anchor payload (tag already stripped).
fn decode_sync_anchor(payload: &[u8]) -> Result<Vec<(String, u64, u64)>, String> {
    let need = |n: usize, pos: usize| -> Result<(), String> {
        if payload.len() < pos + n {
            return Err(format!(
                "wal anchor truncated at {pos}+{n} of {}",
                payload.len()
            ));
        }
        Ok(())
    };
    need(4, 0)?;
    let n = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        need(2, pos)?;
        let name_len = u16::from_le_bytes(payload[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        need(name_len + 16, pos)?;
        let name = String::from_utf8(payload[pos..pos + name_len].to_vec())
            .map_err(|e| format!("wal anchor table name: {e}"))?;
        pos += name_len;
        let rows = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
        let bytes = u64::from_le_bytes(payload[pos + 8..pos + 16].try_into().unwrap());
        pos += 16;
        entries.push((name, rows, bytes));
    }
    if pos != payload.len() {
        return Err("trailing bytes in wal anchor".to_owned());
    }
    Ok(entries)
}

/// Decode an ingest-batch payload (tag already stripped).
fn decode_wal_batch(payload: &[u8]) -> Result<WalBatch, String> {
    let need = |n: usize, pos: usize| -> Result<(), String> {
        if payload.len() < pos + n {
            return Err(format!(
                "wal record truncated at {pos}+{n} of {}",
                payload.len()
            ));
        }
        Ok(())
    };
    need(2, 0)?;
    let name_len = u16::from_le_bytes(payload[0..2].try_into().unwrap()) as usize;
    need(name_len, 2)?;
    let table = String::from_utf8(payload[2..2 + name_len].to_vec())
        .map_err(|e| format!("wal record table name: {e}"))?;
    let mut pos = 2 + name_len;
    need(12, pos)?;
    let start_rows = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap());
    let n_rows = u32::from_le_bytes(payload[pos + 8..pos + 12].try_into().unwrap()) as usize;
    pos += 12;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        match rowformat::read_record(payload, &mut pos) {
            rowformat::ReadOutcome::Record(row) => rows.push(row),
            rowformat::ReadOutcome::End => {
                return Err(format!("wal record short: {} of {n_rows} rows", rows.len()))
            }
            rowformat::ReadOutcome::Torn(why) => return Err(format!("wal record torn: {why}")),
        }
    }
    Ok(WalBatch {
        table,
        start_rows,
        rows,
    })
}

/// What a non-destructive peek at the metadata region found, taken
/// *before* recovery claims (and thereby invalidates) the image.
#[derive(Debug, Default, Clone, Copy)]
struct CheckpointProbe {
    /// Parity of the checkpoint segments the registry points at, if the
    /// image was written by the checkpointer rather than a planned
    /// shutdown. The replacement's checkpointer takes the *other* parity,
    /// so segment views it inherited can never unlink its new image.
    image_parity: Option<u32>,
    /// True when a *valid* checkpoint image is present — i.e. the
    /// upcoming memory recovery, if it succeeds, is a crash-fast
    /// recovery (warm image + WAL tail), not a planned-restart one.
    warm_checkpoint: bool,
}

/// Peek at the metadata region without claiming it.
fn probe_checkpoint_image(ns: &ShmNamespace) -> CheckpointProbe {
    let mut probe = CheckpointProbe::default();
    let Ok(meta) = LeafMetadata::open(ns) else {
        return probe;
    };
    let Ok(contents) = meta.read() else {
        return probe;
    };
    // Checkpoint segment names are `…_k{parity}_{index}`; matching on the
    // index-0 stem covers every index.
    let stem = |parity: u32| {
        let n = ns.checkpoint_segment_name(parity, 0);
        n[..n.len() - 1].to_owned()
    };
    let (stem0, stem1) = (stem(0), stem(1));
    for entry in &contents.segments {
        if entry.flags & SEG_FLAG_CHECKPOINT == 0 {
            continue;
        }
        if entry.name.starts_with(&stem0) {
            probe.image_parity = Some(0);
        } else if entry.name.starts_with(&stem1) {
            probe.image_parity = Some(1);
        }
    }
    probe.warm_checkpoint = contents.valid && probe.image_parity.is_some();
    probe
}

/// Coarse lifecycle phase of a leaf, deciding request admission (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafPhase {
    /// Serving adds and queries.
    Alive,
    /// Draining for shutdown (rejects new work).
    Preparing,
    /// Copying heap → shared memory.
    CopyingToShm,
    /// Restoring shared memory → heap (no adds, no queries).
    MemoryRecovery,
    /// Rebuilding from disk (adds and queries allowed; results partial).
    DiskRecovery,
    /// Attached to shared memory and serving; background workers are
    /// copying mapped tables to heap. Adds and queries allowed — ingest
    /// lands in fresh heap row blocks, queries read borrowed shm bytes.
    Hydrating,
    /// Process gone.
    Down,
}

impl LeafPhase {
    /// Phase name for errors and dashboards.
    pub fn name(self) -> &'static str {
        match self {
            LeafPhase::Alive => "ALIVE",
            LeafPhase::Preparing => "PREPARE",
            LeafPhase::CopyingToShm => "COPY_TO_SHM",
            LeafPhase::MemoryRecovery => "MEMORY_RECOVERY",
            LeafPhase::DiskRecovery => "DISK_RECOVERY",
            LeafPhase::Hydrating => "HYDRATING",
            LeafPhase::Down => "DOWN",
        }
    }

    /// May rows be added? (§4.3: disk recovery accepts adds, memory
    /// recovery does not. Hydration does: the attach already installed
    /// every table, and new rows go to fresh heap builders.)
    pub fn accepts_adds(self) -> bool {
        matches!(
            self,
            LeafPhase::Alive | LeafPhase::DiskRecovery | LeafPhase::Hydrating
        )
    }

    /// May queries run? (Same admission rule as adds.)
    pub fn accepts_queries(self) -> bool {
        matches!(
            self,
            LeafPhase::Alive | LeafPhase::DiskRecovery | LeafPhase::Hydrating
        )
    }

    /// Stable ordinal for the `leaf_phase` gauge (0 = ALIVE … 5 = DOWN,
    /// 6 = HYDRATING).
    pub fn index(self) -> u8 {
        match self {
            LeafPhase::Alive => 0,
            LeafPhase::Preparing => 1,
            LeafPhase::CopyingToShm => 2,
            LeafPhase::MemoryRecovery => 3,
            LeafPhase::DiskRecovery => 4,
            LeafPhase::Down => 5,
            LeafPhase::Hydrating => 6,
        }
    }
}

/// How a leaf came back up.
#[derive(Debug)]
pub enum RecoveryOutcome {
    /// Shared-memory restore succeeded (everything copied to heap).
    Memory(RestoreReport),
    /// Shared-memory *attach* succeeded ([`RestoreMode::TwoPhase`]): the
    /// leaf is serving over mapped segments and hydrating in background.
    /// The report's duration is the time to first query, not to full
    /// recovery — drive [`LeafServer::poll_hydration`] /
    /// [`LeafServer::finish_hydration`] to complete it.
    MemoryAttached(AttachReport),
    /// Fell back to (or was configured for) disk recovery; carries the
    /// reason and the disk recovery stats.
    Disk {
        /// Why memory recovery did not happen.
        reason: String,
        /// Read/translate breakdown of the disk path.
        stats: RecoveryStats,
    },
}

impl RecoveryOutcome {
    /// True if this was a fast (memory) recovery.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            RecoveryOutcome::Memory(_) | RecoveryOutcome::MemoryAttached(_)
        )
    }

    /// Wall-clock duration until the leaf accepted its first request.
    pub fn duration(&self) -> Duration {
        match self {
            RecoveryOutcome::Memory(r) => r.duration,
            RecoveryOutcome::MemoryAttached(r) => r.duration,
            RecoveryOutcome::Disk { stats, .. } => stats.read_duration + stats.translate_duration,
        }
    }
}

/// One hydrated row block coming back from a worker.
struct HydratedBlock {
    /// Table the block belongs to.
    table: String,
    /// The shm-backed block the worker started from (identity key for
    /// [`scuba_columnstore::Table::apply_block_patch`]).
    old: Arc<RowBlock>,
    /// Heap copy, or the deferred-CRC failure that makes the whole leaf
    /// fall back to disk.
    new: Result<RowBlock, String>,
}

/// Verify every mapped column's deferred RBC checksum, then copy the
/// block to heap. Runs on a worker thread; no store access.
fn hydrate_block(block: &RowBlock) -> Result<RowBlock, String> {
    for column in block.columns().iter().filter(|c| c.is_mapped()) {
        column.verify_checksum().map_err(|e| e.to_string())?;
    }
    Ok(block.to_heap())
}

/// One block awaiting hydration.
type HydrationJob = (String, Arc<RowBlock>);

/// Shared hydration work queue. Jobs sit in one of two lists: `ready`
/// (workers may take them) and `parked` (waiting for a query to touch
/// them — [`HydrationMode::OnAccess`] starts everything here). A query
/// touch promotes a block parked → front of ready, so the scan's working
/// set hydrates first; [`LeafServer::finish_hydration`] releases the
/// rest.
#[derive(Debug)]
struct QueueState {
    ready: std::collections::VecDeque<HydrationJob>,
    parked: Vec<HydrationJob>,
    closed: bool,
}

#[derive(Debug)]
struct HydrationQueue {
    state: std::sync::Mutex<QueueState>,
    cond: std::sync::Condvar,
}

impl HydrationQueue {
    fn new(jobs: Vec<HydrationJob>, mode: HydrationMode) -> HydrationQueue {
        let state = match mode {
            HydrationMode::Eager => QueueState {
                ready: jobs.into(),
                parked: Vec::new(),
                closed: false,
            },
            HydrationMode::OnAccess => QueueState {
                ready: std::collections::VecDeque::new(),
                parked: jobs,
                closed: false,
            },
        };
        HydrationQueue {
            state: std::sync::Mutex::new(state),
            cond: std::sync::Condvar::new(),
        }
    }

    /// Worker side: next ready job. Blocks while jobs are parked; `None`
    /// once the queue is closed or drained (nothing ready *or* parked).
    fn pop(&self) -> Option<HydrationJob> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return None;
            }
            if let Some(job) = st.ready.pop_front() {
                return Some(job);
            }
            if st.parked.is_empty() {
                return None;
            }
            st = self.cond.wait(st).unwrap();
        }
    }

    /// Query side: a scan touched `block` — if it is still parked, move
    /// it to the front of the ready list so it hydrates next.
    fn promote(&self, block: &Arc<RowBlock>) {
        let mut st = self.state.lock().unwrap();
        if let Some(i) = st.parked.iter().position(|(_, b)| Arc::ptr_eq(b, block)) {
            let job = st.parked.swap_remove(i);
            st.ready.push_front(job);
            self.cond.notify_one();
        }
    }

    /// Release every parked job to the workers (finish_hydration).
    fn release_all(&self) {
        let mut st = self.state.lock().unwrap();
        let parked = std::mem::take(&mut st.parked);
        st.ready.extend(parked);
        self.cond.notify_all();
    }

    /// Wake every worker and make further pops return `None` (fallback /
    /// crash teardown — without this, workers blocked on parked jobs
    /// would never join and their mapped segment refs would leak).
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    /// Blocks still waiting for a query to touch them.
    fn parked_len(&self) -> usize {
        self.state.lock().unwrap().parked.len()
    }
}

/// Background worker pool converting mapped blocks to heap after an
/// attach. Results stream back over a channel; the server applies them
/// under its own `&mut` (the workers never touch the store).
#[derive(Debug)]
struct Hydrator {
    rx: mpsc::Receiver<HydratedBlock>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Blocks handed to workers whose results have not been applied yet.
    pending: usize,
    /// When phase two began — the `restart.hydration` span's base.
    started: Instant,
    /// The shared work queue (query touches promote through it).
    queue: Arc<HydrationQueue>,
    /// Mapped blocks whose deferred CRC a query already verified (keyed
    /// by block address; blocks are pinned by the table for the whole
    /// hydration, so addresses are stable).
    verified: std::sync::Mutex<std::collections::HashSet<usize>>,
    /// First in-place CRC failure seen by a query, if any. Queries take
    /// `&self`, so they can only *record* the condemnation here; the next
    /// poll/finish turns it into the disk fallback.
    poison: std::sync::Mutex<Option<String>>,
}

impl Hydrator {
    /// Snapshot every mapped block and fan the copy work out over the
    /// resolved copy-thread count.
    fn spawn(store: &LeafStore, copy_threads: usize, mode: HydrationMode) -> Hydrator {
        let mut jobs: Vec<HydrationJob> = Vec::new();
        for table in store.map().iter() {
            for block in table.mapped_blocks() {
                jobs.push((table.name().to_owned(), block));
            }
        }
        let pending = jobs.len();
        let threads = resolve_copy_threads(copy_threads).min(pending.max(1));
        let queue = Arc::new(HydrationQueue::new(jobs, mode));
        let (tx, rx) = mpsc::channel();
        let workers = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    while let Some((table, old)) = queue.pop() {
                        let new = hydrate_block(&old);
                        if tx.send(HydratedBlock { table, old, new }).is_err() {
                            return; // server gone (crash/fallback); stop
                        }
                    }
                })
            })
            .collect();
        Hydrator {
            rx,
            workers,
            pending,
            started: Instant::now(),
            queue,
            verified: std::sync::Mutex::new(std::collections::HashSet::new()),
            poison: std::sync::Mutex::new(None),
        }
    }

    /// A query is about to scan `table`: CRC-verify every mapped block it
    /// will touch (first touch only), then promote those blocks to the
    /// head of the hydration queue. A verification failure poisons the
    /// hydrator — the caller fails the query and the next poll/finish
    /// falls back to disk.
    fn touch(&self, table: &Table, query: &Query) -> Result<(), String> {
        if let Some(reason) = self.poison.lock().unwrap().clone() {
            return Err(reason);
        }
        let plan = scuba_query::plan_scan(table, query).map_err(|e| e.to_string())?;
        for block in &plan.blocks {
            if !block.columns().iter().any(|c| c.is_mapped()) {
                continue;
            }
            let key = Arc::as_ptr(block) as usize;
            if self.verified.lock().unwrap().contains(&key) {
                continue;
            }
            for column in block.columns().iter().filter(|c| c.is_mapped()) {
                if let Err(e) = column.verify_checksum() {
                    let reason = format!("query touched corrupt mapped block: {e}");
                    *self.poison.lock().unwrap() = Some(reason.clone());
                    return Err(reason);
                }
            }
            self.verified.lock().unwrap().insert(key);
            self.queue.promote(block);
        }
        Ok(())
    }

    /// The poison reason, if a query hit a corrupt mapped block.
    fn poison_reason(&self) -> Option<String> {
        self.poison.lock().unwrap().clone()
    }
}

/// What a clean shutdown did.
#[derive(Debug)]
pub struct ShutdownSummary {
    /// Per-table final backup state (all `Done` on success).
    pub table_states: Vec<(String, TableBackupState)>,
    /// Rows that were still unsealed and got sealed during prepare.
    pub sealed_rows: usize,
    /// Dirty bytes flushed to disk during prepare (§4.1 synchronization).
    pub disk_synced_bytes: u64,
    /// The shared-memory copy report.
    pub backup: BackupReport,
}

/// One Scuba leaf server.
#[derive(Debug)]
pub struct LeafServer {
    config: LeafConfig,
    store: LeafStore,
    disk: DiskBackup,
    ns: ShmNamespace,
    phase: LeafPhase,
    /// `{shm_prefix}:{leaf_id}` — the `leaf` label on this server's
    /// metric series, unique per leaf within the process.
    obs_key: String,
    /// Background hydration pool, present only while `Hydrating`.
    hydrator: Option<Hydrator>,
    /// The `now` the leaf started with; stamps blocks if hydration has to
    /// fall back to disk recovery.
    hydrate_now: i64,
    /// Why hydration fell back to disk, if it did.
    hydration_fallback: Option<String>,
    /// Units the last memory recovery skipped as format-incompatible and
    /// recovered from disk instead (per-table fallback).
    skipped_units: Vec<String>,
    /// Per-leaf write-ahead log covering post-checkpoint ingest. Present
    /// iff `config.checkpoint_enabled` and the log is healthy; a write
    /// error *poisons* it (set to `None`, checkpointer torn down) so a
    /// crash degrades to the disk path rather than replaying a log with
    /// holes. Ingest never fails because of the WAL.
    wal: Option<WalWriter>,
    /// Background checkpoint worker, present iff `checkpoint_enabled`
    /// and the crash path is healthy.
    checkpointer: Option<Checkpointer>,
    /// Monotonic ingest-batch counter; checkpoint jobs are stamped with
    /// it so completion can tell whether the image covers the whole WAL.
    ingest_epoch: u64,
    /// Sealed blocks covered by the last committed checkpoint (feeds the
    /// `leaf_checkpoint_lag_blocks` gauge).
    committed_sealed: usize,
    /// Rows ingested since the last checkpoint request (auto-trigger).
    rows_since_checkpoint: usize,
    /// Whether a checkpoint request is in flight on the worker.
    checkpoint_inflight: bool,
    /// WAL records applied by the last recovery's replay.
    wal_replayed_records: usize,
    /// True when the last recovery came back through a *checkpoint*
    /// image (crash-fast path) rather than a planned-shutdown backup.
    recovered_from_checkpoint: bool,
    /// Why the WAL was poisoned, if it was.
    wal_poison_reason: Option<String>,
}

impl LeafServer {
    /// Create an empty leaf (first boot; no recovery attempted).
    pub fn new(config: LeafConfig) -> LeafResult<LeafServer> {
        let mut server = LeafServer::new_core(config)?;
        if server.config.checkpoint_enabled {
            // Probe the parity first: a dying predecessor may still hold
            // unlink-on-last-drop views over its image's parity, so the
            // new checkpointer must take the other one.
            let probe = probe_checkpoint_image(&server.ns);
            let parity = probe.image_parity.map_or(0, |p| 1 - p);
            // First boot abandons any predecessor state. Sweep a dead
            // predecessor's image now — leaving a *valid* stale image
            // linked means a crash before our first checkpoint cycle
            // would let the next start() resurrect the abandoned life's
            // data over an empty WAL.
            server.ns.unlink_all(crate::checkpoint::STALE_SWEEP);
            server.open_crash_path(parity, true);
        }
        Ok(server)
    }

    /// Build the server shell without starting the crash path — the
    /// recovery path must read the WAL and probe the old image *before*
    /// the writer truncates torn tails or the checkpointer picks a parity.
    fn new_core(config: LeafConfig) -> LeafResult<LeafServer> {
        let disk = DiskBackup::open(&config.disk_root)?;
        let ns = ShmNamespace::new(&config.shm_prefix, config.leaf_id)?;
        let obs_key = format!("{}:{}", config.shm_prefix, config.leaf_id);
        let mut server = LeafServer {
            config,
            store: LeafStore::new(),
            disk,
            ns,
            phase: LeafPhase::Alive,
            obs_key,
            hydrator: None,
            hydrate_now: 0,
            hydration_fallback: None,
            skipped_units: Vec::new(),
            wal: None,
            checkpointer: None,
            ingest_epoch: 0,
            committed_sealed: 0,
            rows_since_checkpoint: 0,
            checkpoint_inflight: false,
            wal_replayed_records: 0,
            recovered_from_checkpoint: false,
            wal_poison_reason: None,
        };
        server.set_phase(LeafPhase::Alive);
        Ok(server)
    }

    /// Start the crash path: spawn the checkpoint worker on `parity` and
    /// open the WAL writer (truncating it first when the log predates the
    /// state we now hold, e.g. after a disk recovery). Any WAL problem
    /// poisons the path instead of failing the server.
    fn open_crash_path(&mut self, parity: u32, truncate_wal: bool) {
        debug_assert!(self.config.checkpoint_enabled);
        self.checkpointer = Some(Checkpointer::spawn(self.ns.clone(), parity));
        match WalWriter::open(self.config.disk_root.join(WAL_FILE)) {
            Ok(mut wal) => {
                if truncate_wal {
                    if let Err(e) = wal.truncate() {
                        self.wal = Some(wal);
                        self.poison_wal(format!("truncate: {e}"));
                        return;
                    }
                }
                self.wal = Some(wal);
                self.publish_checkpoint_gauges();
            }
            Err(e) => self.poison_wal(format!("open: {e}")),
        }
    }

    /// A WAL write failed: the log can no longer promise to cover every
    /// post-checkpoint batch, so a warm image + this log would silently
    /// drop rows. Drop the log *and* the checkpoint image — the next
    /// crash recovers from disk with exact durable fidelity.
    fn poison_wal(&mut self, reason: String) {
        self.wal = None;
        if let Some(ck) = self.checkpointer.take() {
            ck.teardown();
        }
        self.checkpoint_inflight = false;
        scuba_obs::counter!("leaf_wal_poisoned_total").inc();
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_wal_bytes", &labels).set(0);
            scuba_obs::labeled_counter("leaf_wal_poisoned", &labels).inc();
        }
        self.wal_poison_reason = Some(reason);
    }

    /// Record a phase edge: the admission-controlling field plus the
    /// per-leaf `leaf_phase` / `leaf_accepting_queries` gauges the
    /// dashboard feed reads. Every phase assignment goes through here.
    fn set_phase(&mut self, phase: LeafPhase) {
        self.phase = phase;
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_phase", &labels).set(i64::from(phase.index()));
            scuba_obs::labeled_gauge("leaf_accepting_queries", &labels)
                .set(i64::from(phase.accepts_queries()));
        }
        self.publish_memory_gauges();
    }

    /// Publish the heap/shm split (satellite of §4.4 accounting: bytes
    /// are either heap-resident or shm-resident, never both).
    fn publish_memory_gauges(&self) {
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_heap_bytes", &labels).set(self.memory_used() as i64);
            scuba_obs::labeled_gauge("leaf_shm_bytes", &labels).set(self.shm_resident() as i64);
            scuba_obs::labeled_gauge("leaf_hydration_pending_blocks", &labels)
                .set(self.hydrator.as_ref().map_or(0, |h| h.pending) as i64);
            scuba_obs::labeled_gauge("leaf_hydration_on_access_blocks", &labels)
                .set(self.hydrator.as_ref().map_or(0, |h| h.queue.parked_len()) as i64);
        }
    }

    /// Stamp every restart span this leaf emits from now on with `id`
    /// (rollover sets this to its wave's trace id before the kill).
    pub fn set_trace_id(&mut self, id: u64) {
        self.config.trace_id = id;
    }

    /// The trace id restart spans carry: the per-leaf override when set,
    /// else the process-wide trace (racy across parallel rollovers in one
    /// process, which is why the override exists).
    fn span_trace_id(&self) -> u64 {
        if self.config.trace_id != 0 {
            self.config.trace_id
        } else {
            scuba_obs::current_trace_id()
        }
    }

    /// Emit one restart-timeline span, tagged with this leaf and the
    /// active trace id. These are explicit-duration records taken from
    /// the restart reports, so the telemetry table stores exactly the
    /// numbers the Figure-5 breakdown prints.
    fn emit_restart_span(&self, name: &'static str, op: &str, phase: &str, duration: Duration) {
        scuba_obs::emit_span(scuba_obs::SpanRecord {
            name,
            attrs: vec![
                ("leaf", self.obs_key.clone()),
                ("op", op.to_owned()),
                ("phase", phase.to_owned()),
            ],
            duration,
            bytes: 0,
            outcome: "ok",
            trace_id: self.span_trace_id(),
        });
    }

    /// Emit the restore side of the `restart.phase` timeline: one span
    /// per Figure-5 phase after a full restore, a single `attach` span
    /// after a two-phase attach, or `read`/`translate` spans for the
    /// disk path. Their per-leaf sum reproduces the `RestartReport`
    /// restore total (±5% — the trace-reconstruction acceptance check).
    fn emit_restore_spans(&self, outcome: &RecoveryOutcome) {
        if !scuba_obs::enabled() {
            return;
        }
        match outcome {
            RecoveryOutcome::Memory(r) => {
                for &(phase, d) in &r.phases.phases {
                    self.emit_restart_span("restart.phase", "restore", phase.name(), d);
                }
            }
            RecoveryOutcome::MemoryAttached(r) => {
                self.emit_restart_span("restart.phase", "restore", "attach", r.duration);
            }
            RecoveryOutcome::Disk { stats, .. } => {
                self.emit_restart_span("restart.phase", "disk", "read", stats.read_duration);
                self.emit_restart_span(
                    "restart.phase",
                    "disk",
                    "translate",
                    stats.translate_duration,
                );
            }
        }
    }

    /// Start a leaf process, recovering state — Figure 5(b)/Figure 7.
    /// Tries shared memory first (if enabled), falling back to disk on any
    /// problem. `now` stamps recovered blocks; `disk_throttle` optionally
    /// paces the disk read phase at a simulated device bandwidth.
    ///
    /// This wrapper owns the restart counters: every call moves
    /// `restarts_started`, and exactly one of `restarts_completed` /
    /// `restarts_failed` — the chaos soak asserts started = completed +
    /// failed after hundreds of waves.
    pub fn start(
        config: LeafConfig,
        now: i64,
        disk_throttle: Option<&Throttle>,
    ) -> LeafResult<(LeafServer, RecoveryOutcome)> {
        scuba_obs::counter!("restarts_started").inc();
        let started = std::time::Instant::now();
        match LeafServer::start_inner(config, now, disk_throttle) {
            Ok((server, outcome)) => {
                if scuba_obs::enabled() {
                    scuba_obs::counter!("restarts_completed").inc();
                    let labels = [("leaf", server.obs_key.as_str())];
                    scuba_obs::labeled_counter("leaf_recoveries_total", &labels).inc();
                    // Time to first query: the leaf accepts requests the
                    // moment start() returns — under TwoPhase that is
                    // attach cost, not full-restore cost.
                    scuba_obs::labeled_gauge("leaf_time_to_first_query_ns", &labels)
                        .set(started.elapsed().as_nanos().min(i64::MAX as u128) as i64);
                    server.emit_restore_spans(&outcome);
                }
                Ok((server, outcome))
            }
            Err(e) => {
                scuba_obs::counter!("restarts_failed").inc();
                Err(e)
            }
        }
    }

    fn start_inner(
        config: LeafConfig,
        now: i64,
        disk_throttle: Option<&Throttle>,
    ) -> LeafResult<(LeafServer, RecoveryOutcome)> {
        let mut server = LeafServer::new_core(config)?;
        let mut state = LeafRestoreState::Init;
        // Peek before recovery claims the image: was it written by the
        // checkpointer (crash path), and on which parity? The new
        // checkpointer takes the other parity either way.
        let probe = if server.config.checkpoint_enabled {
            probe_checkpoint_image(&server.ns)
        } else {
            CheckpointProbe::default()
        };
        let ck_parity = probe.image_parity.map_or(0, |p| 1 - p);

        if server.config.shm_recovery_enabled {
            state = state.transition(LeafRestoreState::MemoryRecovery)?;
            server.set_phase(LeafPhase::MemoryRecovery);
            phase_failpoint("leaf::phase::memory_recovery")?;
            let attempt = match server.config.restore_mode {
                RestoreMode::Full => restore_from_shm_with(
                    &mut server.store,
                    &server.ns,
                    SHM_LAYOUT_VERSION,
                    CopyOptions::with_threads(server.config.copy_threads),
                )
                .map(RecoveryOutcome::Memory),
                RestoreMode::TwoPhase => {
                    attach_from_shm(&mut server.store, &server.ns, SHM_LAYOUT_VERSION)
                        .map(RecoveryOutcome::MemoryAttached)
                }
            };
            match attempt {
                Ok(outcome) => {
                    // Per-table fallback: units the protocol skipped as
                    // format-incompatible come back from disk — only
                    // those; every other table already restored from
                    // memory. (The paper's §4.3 conservatism is per-leaf;
                    // the self-describing layout narrows it per-table.)
                    let skipped = match &outcome {
                        RecoveryOutcome::Memory(r) => r.skipped.clone(),
                        RecoveryOutcome::MemoryAttached(r) => r.skipped.clone(),
                        RecoveryOutcome::Disk { .. } => Vec::new(),
                    };
                    if !skipped.is_empty() {
                        let (mut map, _stats) =
                            server.disk.recover_tables(&skipped, now, disk_throttle)?;
                        for (_, table) in map.take_tables() {
                            server.store.map_mut().insert(table);
                        }
                        scuba_obs::counter!("leaf_tables_disk_recovered").add(skipped.len() as u64);
                        server.skipped_units = skipped;
                    }
                    // Crash path: the image is a consistent *prefix* of
                    // what the dead process held — replay the WAL tail on
                    // top of it, in parallel across tables, then make the
                    // disk backup cover every row now in memory *before*
                    // anything can truncate the WAL (a crash discards the
                    // backup's buffered tail; without reconciliation those
                    // rows would live only in memory + volatile shm, and a
                    // later disk-path recovery would silently lose them).
                    // Any gap, unreadable log, or disk/memory mismatch
                    // condemns the whole memory recovery (§4.3
                    // conservatism) and the leaf rebuilds from disk.
                    if server.config.checkpoint_enabled {
                        let crash_sync = server.replay_wal_tail(now).and_then(|hints| {
                            // Reconcile on any crash-shaped recovery: a
                            // warm checkpoint image, or replayed records
                            // (which can exist even when the image probe
                            // failed). A planned restore has neither —
                            // shutdown already synced everything.
                            if probe.warm_checkpoint || server.wal_replayed_records > 0 {
                                server.reconcile_disk_coverage(&hints)
                            } else {
                                Ok(())
                            }
                        });
                        if let Err(reason) = crash_sync {
                            state = state.transition(LeafRestoreState::DiskRecovery)?;
                            server.store = LeafStore::new();
                            let outcome = server.disk_recover(now, disk_throttle, reason)?;
                            state = state.transition(LeafRestoreState::Alive)?;
                            debug_assert_eq!(state, LeafRestoreState::Alive);
                            server.open_crash_path(ck_parity, true);
                            return Ok((server, outcome));
                        }
                        if probe.warm_checkpoint {
                            server.recovered_from_checkpoint = true;
                            if scuba_obs::enabled() {
                                let labels = [("leaf", server.obs_key.as_str())];
                                scuba_obs::labeled_counter(
                                    "leaf_crash_fast_recoveries_total",
                                    &labels,
                                )
                                .inc();
                            }
                        }
                        // The replayed rows are in memory and still in the
                        // log; the next full-coverage checkpoint truncates
                        // it. Replay is idempotent, so keeping the old
                        // records is safe.
                        server.open_crash_path(ck_parity, false);
                    }
                    state = state.transition(LeafRestoreState::Alive)?;
                    debug_assert_eq!(state, LeafRestoreState::Alive);
                    if matches!(outcome, RecoveryOutcome::MemoryAttached(_)) {
                        server.hydrate_now = now;
                        if server.store.map().mapped_bytes() > 0 {
                            // Phase two starts now, in background; the
                            // leaf serves over the mapped segments.
                            server.set_phase(LeafPhase::Hydrating);
                            phase_failpoint("leaf::phase::hydrating")?;
                            server.hydrator = Some(Hydrator::spawn(
                                &server.store,
                                server.config.copy_threads,
                                server.config.hydration,
                            ));
                            server.publish_memory_gauges();
                            return Ok((server, outcome));
                        }
                    }
                    server.set_phase(LeafPhase::Alive);
                    return Ok((server, outcome));
                }
                Err(RestoreError::Fallback(fb)) => {
                    // Figure 5(b) "exception" edge: clear any partial
                    // restore and recover from disk.
                    state = state.transition(LeafRestoreState::DiskRecovery)?;
                    server.store = LeafStore::new();
                    let outcome = server.disk_recover(now, disk_throttle, fb.reason)?;
                    state = state.transition(LeafRestoreState::Alive)?;
                    debug_assert_eq!(state, LeafRestoreState::Alive);
                    if server.config.checkpoint_enabled {
                        server.open_crash_path(ck_parity, true);
                    }
                    return Ok((server, outcome));
                }
            }
        }
        // Memory recovery disabled.
        state = state.transition(LeafRestoreState::DiskRecovery)?;
        let outcome =
            server.disk_recover(now, disk_throttle, "memory recovery disabled".to_owned())?;
        state = state.transition(LeafRestoreState::Alive)?;
        debug_assert_eq!(state, LeafRestoreState::Alive);
        if server.config.checkpoint_enabled {
            server.open_crash_path(ck_parity, true);
        }
        Ok((server, outcome))
    }

    fn disk_recover(
        &mut self,
        now: i64,
        throttle: Option<&Throttle>,
        reason: String,
    ) -> LeafResult<RecoveryOutcome> {
        self.set_phase(LeafPhase::DiskRecovery);
        phase_failpoint("leaf::phase::disk_recovery")?;
        // Writers may hold buffered appends from the life being abandoned
        // (mid-life hydration fallback, a partial reconcile): drop them so
        // they can't flush stale bytes into the logs recovery is about to
        // rebuild the store from.
        self.disk.discard_buffered();
        let (map, stats) = self.disk.recover(now, throttle)?;
        self.store = LeafStore::from_map(map);
        // Repair torn tails on disk too: recovery dropped them from
        // memory, and later appends must extend the valid prefix rather
        // than hide behind garbage (which would also resurface rows this
        // recovery never served).
        if stats.torn_tails > 0 {
            for table in self.disk.tables()? {
                let cov = self.disk.coverage(&table, None)?;
                if cov.valid_len < cov.file_len {
                    self.disk.truncate_table(&table, cov.valid_len)?;
                }
            }
        }
        self.set_phase(LeafPhase::Alive);
        Ok(RecoveryOutcome::Disk { reason, stats })
    }

    /// Decode a table's in-memory rows from index `from` onward, in
    /// ingest order (sealed blocks oldest-first, then the unsealed
    /// builder) — exactly the disk log's append order. Mapped
    /// (shm-backed) blocks are checksum-verified before decoding: bytes
    /// that never passed the deferred CRC must not be persisted.
    fn materialize_rows_from(table: &Table, from: usize) -> Result<Vec<Row>, String> {
        let mut out = Vec::new();
        let mut base = 0usize;
        for block in table.blocks() {
            let n = block.row_count();
            if base + n > from {
                for column in block.columns().iter().filter(|c| c.is_mapped()) {
                    column.verify_checksum().map_err(|e| e.to_string())?;
                }
                let rows = block.decode_rows().map_err(|e| e.to_string())?;
                out.extend_from_slice(&rows[from.saturating_sub(base)..]);
            }
            base += n;
        }
        if let Some(snap) = table.unsealed_snapshot().map_err(|e| e.to_string())? {
            let rows = snap.decode_rows().map_err(|e| e.to_string())?;
            let skip = from.saturating_sub(base);
            if skip < rows.len() {
                out.extend_from_slice(&rows[skip..]);
            }
        }
        Ok(out)
    }

    /// After a crash-shaped memory recovery, make the disk backup cover
    /// exactly the rows now in memory: the crash discarded the backup's
    /// buffered tail, so WAL-replayed rows may exist only in memory and
    /// the volatile shm image. For each table, count the log's valid
    /// record prefix (cheap when the WAL's last sync anchor bounds the
    /// scan), truncate any torn tail, and re-append the uncovered row
    /// suffix — all before the crash path reopens and anything can
    /// truncate the WAL. A log holding *more* rows than memory means
    /// image+WAL and disk disagree; condemn the memory recovery.
    fn reconcile_disk_coverage(
        &mut self,
        hints: &std::collections::BTreeMap<String, (u64, u64)>,
    ) -> Result<(), String> {
        let started = Instant::now();
        let names: Vec<String> = self.store.map().names().map(str::to_owned).collect();
        let mut reappended = 0u64;
        let mut scanned = 0u64;
        let mut dirty = false;
        for name in &names {
            let cov = self
                .disk
                .coverage(name, hints.get(name).copied())
                .map_err(|e| format!("disk coverage for {name:?}: {e}"))?;
            scanned += cov.scanned_bytes;
            let table = self.store.map().get(name).expect("listed above");
            let memory_rows = table.row_count() as u64;
            if cov.rows > memory_rows {
                return Err(format!(
                    "disk backup for {name:?} holds {} rows, image+wal hold {memory_rows}",
                    cov.rows
                ));
            }
            if cov.valid_len < cov.file_len {
                self.disk
                    .truncate_table(name, cov.valid_len)
                    .map_err(|e| format!("truncating torn tail of {name:?}: {e}"))?;
                dirty = true;
            }
            if cov.rows < memory_rows {
                let rows = Self::materialize_rows_from(table, cov.rows as usize)
                    .map_err(|e| format!("materializing {name:?} tail: {e}"))?;
                debug_assert_eq!(rows.len() as u64, memory_rows - cov.rows);
                self.disk
                    .append(name, &rows)
                    .map_err(|e| format!("re-appending {name:?} tail: {e}"))?;
                reappended += rows.len() as u64;
                dirty = true;
            }
        }
        if dirty {
            self.disk
                .sync()
                .map_err(|e| format!("syncing reconciled backup: {e}"))?;
        }
        scuba_obs::counter!("leaf_crash_reconciled_rows_total").add(reappended);
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_counter("leaf_crash_reconciled_rows_total", &labels).add(reappended);
            scuba_obs::labeled_gauge("leaf_crash_reconcile_scanned_bytes", &labels)
                .set(scanned.min(i64::MAX as u64) as i64);
            scuba_obs::labeled_gauge("leaf_crash_reconcile_ns", &labels)
                .set(started.elapsed().as_nanos().min(i64::MAX as u128) as i64);
        }
        Ok(())
    }

    /// Apply one table's WAL records onto its restored state. The
    /// `start_rows` anchor makes this idempotent: records the image
    /// already covers are skipped, records that line up exactly append,
    /// and anything else means image and log disagree — fail the replay.
    fn apply_wal_batches(
        table: &mut Table,
        batches: &[WalBatch],
        now: i64,
    ) -> Result<usize, String> {
        let mut applied = 0;
        for batch in batches {
            let rc = table.row_count() as u64;
            let n = batch.rows.len() as u64;
            if rc >= batch.start_rows + n {
                continue; // image already covers this batch
            }
            if rc != batch.start_rows {
                return Err(format!(
                    "wal gap on table {:?}: restored {rc} rows, record starts at {}",
                    table.name(),
                    batch.start_rows
                ));
            }
            for row in &batch.rows {
                table.append(row, now).map_err(|e| e.to_string())?;
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// Replay the WAL tail onto the freshly memory-recovered store,
    /// fanning tables out across the copy-thread pool (the same
    /// parallelism knob as the restore copy itself). A torn tail is fine
    /// — replay stops at the last intact record, which is exactly the
    /// durable prefix. An unreadable log or an image/log mismatch is an
    /// `Err`, answered by the caller with a full disk fallback.
    ///
    /// Returns the *last* sync anchor's per-table `(rows, bytes)` disk
    /// coverage (empty if the log holds none) — the scan hints for
    /// [`Self::reconcile_disk_coverage`].
    fn replay_wal_tail(
        &mut self,
        now: i64,
    ) -> Result<std::collections::BTreeMap<String, (u64, u64)>, String> {
        let path = self.config.disk_root.join(WAL_FILE);
        let started = Instant::now();
        let contents = read_wal(&path).map_err(|e| format!("wal unreadable: {e}"))?;
        if contents.torn {
            scuba_obs::counter!("leaf_wal_torn_tails_total").inc();
        }
        self.wal_replayed_records = 0;
        let mut hints = std::collections::BTreeMap::new();
        if contents.records.is_empty() {
            return Ok(hints);
        }
        let mut groups: std::collections::BTreeMap<String, Vec<WalBatch>> =
            std::collections::BTreeMap::new();
        for record in &contents.records {
            match decode_wal_record(record)? {
                WalRecord::Batch(batch) => {
                    groups.entry(batch.table.clone()).or_default().push(batch);
                }
                WalRecord::SyncAnchor(entries) => {
                    // Later anchors supersede earlier ones entirely.
                    hints = entries
                        .into_iter()
                        .map(|(name, rows, bytes)| (name, (rows, bytes)))
                        .collect();
                }
            }
        }
        // Tables present in the image replay in parallel; tables the WAL
        // created *after* the last checkpoint don't exist yet and are
        // built serially afterwards.
        let mut tables = self.store.map_mut().take_tables();
        let mut jobs: Vec<(Table, Vec<WalBatch>)> = Vec::new();
        let mut fresh: Vec<(String, Vec<WalBatch>)> = Vec::new();
        for (name, batches) in groups {
            match tables.remove(&name) {
                Some(table) => jobs.push((table, batches)),
                None => fresh.push((name, batches)),
            }
        }
        let threads = resolve_copy_threads(self.config.copy_threads).min(jobs.len().max(1));
        let mut buckets: Vec<Vec<(Table, Vec<WalBatch>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % threads].push(job);
        }
        let results: Vec<Result<(Vec<Table>, usize), String>> = thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut done = Vec::with_capacity(bucket.len());
                        let mut applied = 0;
                        for (mut table, batches) in bucket {
                            applied += Self::apply_wal_batches(&mut table, &batches, now)?;
                            done.push(table);
                        }
                        Ok((done, applied))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("replay worker panicked".into()))
                })
                .collect()
        });
        let mut applied = 0;
        for result in results {
            let (done, n) = result?;
            applied += n;
            for table in done {
                tables.insert(table.name().to_owned(), table);
            }
        }
        for (_, table) in tables {
            self.store.map_mut().insert(table);
        }
        for (name, batches) in fresh {
            for batch in &batches {
                let rc = self.store.map().get(&name).map_or(0, |t| t.row_count()) as u64;
                let n = batch.rows.len() as u64;
                if rc >= batch.start_rows + n {
                    continue;
                }
                if rc != batch.start_rows {
                    return Err(format!(
                        "wal gap on new table {name:?}: {rc} rows, record starts at {}",
                        batch.start_rows
                    ));
                }
                self.store
                    .append_rows(&name, &batch.rows, now)
                    .map_err(|e| e.to_string())?;
                applied += 1;
            }
        }
        self.wal_replayed_records = applied;
        scuba_obs::counter!("leaf_wal_replayed_records_total").add(applied as u64);
        if scuba_obs::enabled() {
            let labels = [("leaf", self.obs_key.as_str())];
            scuba_obs::labeled_gauge("leaf_wal_replay_ns", &labels)
                .set(started.elapsed().as_nanos().min(i64::MAX as u128) as i64);
            self.emit_restart_span(
                "restart.wal_replay",
                "restore",
                "wal_replay",
                started.elapsed(),
            );
        }
        Ok(hints)
    }

    /// Publish the crash-path gauges: how far the image trails the store
    /// (sealed blocks not yet checkpointed) and how much WAL tail a crash
    /// would have to replay.
    fn publish_checkpoint_gauges(&self) {
        if !scuba_obs::enabled() || !self.config.checkpoint_enabled {
            return;
        }
        let labels = [("leaf", self.obs_key.as_str())];
        let sealed_now: usize = self.store.map().iter().map(|t| t.blocks().len()).sum();
        scuba_obs::labeled_gauge("leaf_checkpoint_lag_blocks", &labels)
            .set(sealed_now.saturating_sub(self.committed_sealed) as i64);
        scuba_obs::labeled_gauge("leaf_wal_bytes", &labels).set(self.wal_bytes() as i64);
    }

    /// Snapshot the store and hand the worker a checkpoint job. False if
    /// the crash path is down (disabled or poisoned) or the worker died.
    fn request_checkpoint(&mut self) -> bool {
        if self.wal.is_none() {
            return false; // poisoned: a log with holes must not pair with an image
        }
        let Some(ck) = self.checkpointer.as_ref() else {
            return false;
        };
        let Ok(tables) = snapshot_tables(&self.store) else {
            return false;
        };
        let ok = ck.request(CheckpointJob {
            tables,
            epoch: self.ingest_epoch,
        });
        if ok {
            self.checkpoint_inflight = true;
            self.rows_since_checkpoint = 0;
        }
        ok
    }

    /// Fold one completed cycle into the server: remember coverage for
    /// the lag gauge and drop the WAL when the image covers every batch.
    fn apply_checkpoint_outcome(
        &mut self,
        outcome: CheckpointOutcome,
    ) -> Result<CheckpointStats, String> {
        self.checkpoint_inflight = false;
        match outcome.result {
            Ok(stats) => {
                self.committed_sealed = stats.sealed_blocks;
                if outcome.epoch == self.ingest_epoch {
                    // Nothing landed since the snapshot: the image covers
                    // the whole log. (Otherwise keep it — replay skips
                    // covered records via the start_rows anchor.)
                    if let Some(wal) = self.wal.as_mut() {
                        if let Err(e) = wal.truncate() {
                            self.poison_wal(format!("truncate: {e}"));
                        }
                    }
                }
                self.publish_checkpoint_gauges();
                Ok(stats)
            }
            Err(reason) => {
                // The worker already invalidated the image and will
                // rebuild from scratch next cycle; until then a crash
                // falls back to disk.
                self.publish_checkpoint_gauges();
                Err(reason)
            }
        }
    }

    /// Apply any checkpoint completions without blocking.
    fn drain_checkpoint_outcomes(&mut self) {
        while let Some(outcome) = self.checkpointer.as_ref().and_then(|ck| ck.try_done()) {
            let _ = self.apply_checkpoint_outcome(outcome);
        }
    }

    /// Auto-trigger: request a checkpoint when enough rows landed since
    /// the last one and the worker is idle.
    fn maybe_auto_checkpoint(&mut self) {
        let interval = self.config.checkpoint_interval_rows;
        if interval == 0 || self.rows_since_checkpoint < interval {
            return;
        }
        self.drain_checkpoint_outcomes();
        if self.checkpoint_inflight {
            return; // still copying the previous snapshot; try after
        }
        self.request_checkpoint();
    }

    /// Take a checkpoint now and wait for it to commit. The synchronous
    /// variant the chaos harness and tests drive; production leaves it to
    /// `checkpoint_interval_rows`.
    pub fn checkpoint_and_wait(&mut self) -> LeafResult<CheckpointStats> {
        if !self.phase.accepts_adds() {
            return Err(LeafError::Unavailable {
                operation: "checkpoint",
                phase: self.phase.name(),
            });
        }
        // Settle any in-flight auto cycle first so ours is next.
        if self.checkpoint_inflight {
            if let Some(outcome) = self.checkpointer.as_ref().and_then(|ck| ck.wait_done()) {
                let _ = self.apply_checkpoint_outcome(outcome);
            } else {
                self.checkpoint_inflight = false;
            }
        }
        if !self.request_checkpoint() {
            return Err(LeafError::Unavailable {
                operation: "checkpoint (crash path disabled or poisoned)",
                phase: self.phase.name(),
            });
        }
        let outcome = self
            .checkpointer
            .as_ref()
            .and_then(|ck| ck.wait_done())
            .ok_or(LeafError::Unavailable {
                operation: "checkpoint (worker died)",
                phase: self.phase.name(),
            })?;
        self.apply_checkpoint_outcome(outcome)
            .map_err(LeafError::Backup)
    }

    /// The store is about to change (or just changed) in a way the
    /// incremental writer cannot track — disk fallback mid-life, expiry.
    /// Tear the image down (same parity respawn) and drop the stale WAL;
    /// the next cycle rebuilds from scratch, and until then a crash goes
    /// to disk.
    fn reset_crash_path(&mut self) {
        if !self.config.checkpoint_enabled {
            return;
        }
        if let Some(ck) = self.checkpointer.take() {
            let parity = ck.parity();
            ck.teardown();
            self.checkpointer = Some(Checkpointer::spawn(self.ns.clone(), parity));
        }
        self.checkpoint_inflight = false;
        self.committed_sealed = 0;
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.truncate() {
                self.poison_wal(format!("truncate: {e}"));
            }
        }
        self.publish_checkpoint_gauges();
    }

    /// WAL records applied by the last recovery's replay.
    pub fn wal_replayed_records(&self) -> usize {
        self.wal_replayed_records
    }

    /// True when the last recovery came back through a checkpoint image
    /// (the crash-fast path) rather than a planned-shutdown backup.
    pub fn recovered_from_checkpoint(&self) -> bool {
        self.recovered_from_checkpoint
    }

    /// Record bytes currently in the WAL, excluding the file header
    /// (0 when the crash path is off or poisoned).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| {
            w.len_bytes().saturating_sub(scuba_restart::wal::WAL_HEADER)
        })
    }

    /// Why the WAL was poisoned, if it was.
    pub fn wal_poison_reason(&self) -> Option<&str> {
        self.wal_poison_reason.as_deref()
    }

    /// True while background hydration is still converting mapped blocks
    /// to heap.
    pub fn is_hydrating(&self) -> bool {
        self.hydrator.is_some()
    }

    /// Blocks handed to hydration workers whose results have not been
    /// applied yet.
    pub fn hydration_pending(&self) -> usize {
        self.hydrator.as_ref().map_or(0, |h| h.pending)
    }

    /// Why hydration fell back to disk recovery, if it did.
    pub fn hydration_fallback_reason(&self) -> Option<&str> {
        self.hydration_fallback.as_deref()
    }

    /// Units the last memory recovery skipped as format-incompatible and
    /// disk-recovered individually (empty when everything came back
    /// through shared memory).
    pub fn skipped_units(&self) -> &[String] {
        &self.skipped_units
    }

    /// Override which image format the next [`Self::shutdown_to_shm`]
    /// writes — how upgrade drills turn a running leaf into a simulated
    /// pre-upgrade binary right before its wave.
    pub fn set_writer_compat(&mut self, compat: WriterCompat) {
        self.config.writer_compat = compat;
    }

    /// Apply any hydrated blocks the workers have finished, without
    /// blocking. Returns the number of blocks still pending; 0 means
    /// hydration is complete (or fell back to disk) and the leaf is
    /// `Alive`. Callers drive this from their event loop — queries take
    /// `&self`, so block swaps happen only here.
    pub fn poll_hydration(&mut self) -> LeafResult<usize> {
        // A query may have condemned the attach (in-place CRC failure on
        // first touch) — it could only record that; act on it here.
        if let Some(reason) = self.hydrator.as_ref().and_then(|h| h.poison_reason()) {
            self.fall_back_from_hydration(reason)?;
            return Ok(0);
        }
        loop {
            let received = match self.hydrator.as_ref() {
                None => return Ok(0),
                Some(h) => h.rx.try_recv(),
            };
            match received {
                Ok(msg) => self.apply_hydrated(msg)?,
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // A worker died (panic) with results outstanding.
                    self.fall_back_from_hydration(
                        "hydration workers exited with blocks outstanding".to_owned(),
                    )?;
                    return Ok(0);
                }
            }
            if self.hydrator.is_none() {
                return Ok(0);
            }
        }
        Ok(self.hydration_pending())
    }

    /// Block until hydration is complete (or has fallen back to disk).
    /// The leaf is `Alive` with zero shm-resident bytes afterwards. Under
    /// [`HydrationMode::OnAccess`] this first releases every parked block
    /// to the workers — the "drain the lazy leaf" operation.
    pub fn finish_hydration(&mut self) -> LeafResult<()> {
        if let Some(reason) = self.hydrator.as_ref().and_then(|h| h.poison_reason()) {
            return self.fall_back_from_hydration(reason);
        }
        if let Some(h) = self.hydrator.as_ref() {
            h.queue.release_all();
        }
        loop {
            let received = match self.hydrator.as_ref() {
                None => return Ok(()),
                Some(h) => h.rx.recv(),
            };
            match received {
                Ok(msg) => self.apply_hydrated(msg)?,
                Err(_) => {
                    return self.fall_back_from_hydration(
                        "hydration workers exited with blocks outstanding".to_owned(),
                    );
                }
            }
        }
    }

    /// Swap one hydrated block into its table (or trigger the disk
    /// fallback on a deferred-CRC failure).
    fn apply_hydrated(&mut self, msg: HydratedBlock) -> LeafResult<()> {
        match msg.new {
            Err(reason) => {
                self.fall_back_from_hydration(format!("hydrating table {:?}: {reason}", msg.table))
            }
            Ok(block) => {
                if let Some(t) = self.store.map_mut().get_mut(&msg.table) {
                    // False means the block left the table meanwhile
                    // (cannot happen today: expire is blocked during
                    // hydration) — the heap copy is simply discarded.
                    t.apply_block_patch(&msg.old, Arc::new(block));
                }
                scuba_obs::counter!("hydrated_blocks_total").inc();
                let h = self.hydrator.as_mut().expect("hydrator present");
                h.pending -= 1;
                if h.pending == 0 {
                    let h = self.hydrator.take().expect("hydrator present");
                    if scuba_obs::enabled() {
                        self.emit_restart_span(
                            "restart.hydration",
                            "restore",
                            "hydration",
                            h.started.elapsed(),
                        );
                    }
                    drop(h.rx);
                    for worker in h.workers {
                        let _ = worker.join();
                    }
                    self.set_phase(LeafPhase::Alive);
                } else {
                    self.publish_memory_gauges();
                }
                Ok(())
            }
        }
        // `msg.old` drops here — when the last mapped reference to a
        // segment goes, the SegmentView unlinks it.
    }

    /// §4.3 conservatism applied to phase two: any hydration failure
    /// (torn payload caught by the deferred CRC, a dead worker) condemns
    /// the whole attach — throw away the mapped store and rebuild from
    /// disk. Rows ingested during hydration share crash semantics: only
    /// the synced prefix survives.
    fn fall_back_from_hydration(&mut self, reason: String) -> LeafResult<()> {
        if let Some(h) = self.hydrator.take() {
            h.queue.close(); // wake workers blocked on parked jobs
            drop(h.rx); // workers' sends now fail; they exit
            for worker in h.workers {
                let _ = worker.join();
            }
        }
        scuba_obs::counter!("hydration_fallbacks").inc();
        self.hydration_fallback = Some(reason.clone());
        // Dropping the store releases the last mapped references; the
        // SegmentViews unlink their segments.
        self.store = LeafStore::new();
        self.disk_recover(self.hydrate_now, None, reason)?;
        // The store was rebuilt under the incremental writer's feet and
        // the WAL's row anchors no longer line up: start the crash path
        // over from this state.
        self.reset_crash_path();
        Ok(())
    }

    /// Current phase.
    pub fn phase(&self) -> LeafPhase {
        self.phase
    }

    /// The `leaf` label on this server's metric series
    /// (`{shm_prefix}:{leaf_id}`), for dashboards that read the gauges.
    pub fn obs_key(&self) -> &str {
        &self.obs_key
    }

    /// Prometheus text exposition of the process-wide metrics — what this
    /// leaf's scrape endpoint would serve.
    pub fn metrics_prometheus(&self) -> String {
        scuba_obs::prometheus_text()
    }

    /// JSON snapshot of the process-wide metrics.
    pub fn metrics_json(&self) -> String {
        scuba_obs::json_snapshot()
    }

    /// This leaf's shared-memory namespace.
    pub fn namespace(&self) -> &ShmNamespace {
        &self.ns
    }

    /// The leaf's configuration.
    pub fn config(&self) -> &LeafConfig {
        &self.config
    }

    /// Heap bytes used. Shm-backed column bytes are *not* counted here —
    /// they live in the mapped segments and are reported separately by
    /// [`LeafServer::shm_resident`], so a hydrating leaf never
    /// double-counts a byte that exists in both places mid-swap.
    pub fn memory_used(&self) -> usize {
        use scuba_restart::ShmPersistable;
        self.store.heap_bytes()
    }

    /// Bytes resident in attached shared-memory segments (column buffers
    /// still awaiting hydration). Zero except during `Hydrating`.
    pub fn shm_resident(&self) -> usize {
        self.store.map().mapped_bytes()
    }

    /// Free memory, as reported to tailers for two-random-choice placement
    /// (§2: the tailer "asks them both for their current state and how
    /// much free memory they have"). Both heap- and shm-resident bytes
    /// count against capacity: the mapped pages are this leaf's to keep.
    pub fn free_memory(&self) -> usize {
        self.config
            .memory_capacity
            .saturating_sub(self.memory_used())
            .saturating_sub(self.shm_resident())
    }

    /// Total rows held.
    pub fn total_rows(&self) -> usize {
        self.store.map().total_rows()
    }

    /// The store (read access for tests and tools).
    pub fn store(&self) -> &LeafStore {
        &self.store
    }

    /// Mutable store access for benchmarks that drive the restart
    /// protocol directly, bypassing the lifecycle. Not for normal use:
    /// it skips the phase gating.
    #[doc(hidden)]
    pub fn store_mut_for_bench(&mut self) -> &mut LeafStore {
        &mut self.store
    }

    /// Add a batch of rows: into memory and appended to the disk backup
    /// (buffered; durable at the next sync).
    pub fn add_rows(&mut self, table: &str, rows: &[Row], now: i64) -> LeafResult<()> {
        let latency = scuba_obs::Stopwatch::start();
        if !self.phase.accepts_adds() {
            return Err(LeafError::Unavailable {
                operation: "add rows",
                phase: self.phase.name(),
            });
        }
        let start_rows = if self.config.checkpoint_enabled && self.wal.is_some() {
            self.store.map().get(table).map_or(0, |t| t.row_count()) as u64
        } else {
            0
        };
        self.store.append_rows(table, rows, now)?;
        if let Err(e) = self.disk.append(table, rows) {
            // Memory now holds rows the disk log skipped: the memory↔disk
            // prefix correspondence the crash path reconciles against is
            // broken mid-file, not at a suffix. Degrade the next crash to
            // the disk path rather than let a reconcile duplicate rows.
            if self.config.checkpoint_enabled {
                self.poison_wal(format!("disk append: {e}"));
            }
            return Err(e.into());
        }
        if self.config.checkpoint_enabled && !rows.is_empty() {
            self.ingest_epoch += 1;
            self.rows_since_checkpoint += rows.len();
            if self.wal.is_some() {
                let payload = encode_wal_batch(table, start_rows, rows);
                // WAL problems never fail ingest: they poison the crash
                // path, degrading the next crash to the disk path.
                if let Err(e) = self.wal.as_mut().unwrap().append(&payload) {
                    self.poison_wal(format!("append: {e}"));
                }
            }
            self.maybe_auto_checkpoint();
            self.publish_checkpoint_gauges();
        }
        if latency.active() {
            scuba_obs::histogram!("leaf_ingest_latency_ns").observe(latency.elapsed_ns());
        }
        Ok(())
    }

    /// Execute a query against this leaf's fraction of the table, on the
    /// vectorized scan path (in-place over mapped blocks — no hydration
    /// forced). On a `Hydrating` leaf the touched mapped blocks are
    /// CRC-verified first (first touch only) and jump the hydration
    /// queue; a verification failure fails the query and condemns the
    /// attach at the next [`Self::poll_hydration`].
    pub fn query(&self, query: &Query) -> LeafResult<LeafQueryResult> {
        let latency = scuba_obs::Stopwatch::start();
        if !self.phase.accepts_queries() {
            return Err(LeafError::Unavailable {
                operation: "query",
                phase: self.phase.name(),
            });
        }
        let Some(t) = self.store.map().get(&query.table) else {
            return Ok(LeafQueryResult::empty());
        };
        if let Some(h) = self.hydrator.as_ref() {
            h.touch(t, query)
                .map_err(|reason| LeafError::Query(format!("mapped scan condemned: {reason}")))?;
        }
        let scan = Instant::now();
        let result = execute_vectorized(t, query)?;
        if scuba_obs::enabled() {
            scuba_obs::histogram!("query_scan_ns")
                .observe(scan.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            scuba_obs::counter!("query_rows_scanned_total").add(result.rows_scanned);
            scuba_obs::counter!("query_blocks_zonemap_pruned_total")
                .add(result.blocks_zonemap_pruned);
            scuba_obs::histogram!("leaf_query_latency_ns").observe(latency.elapsed_ns());
        }
        Ok(result)
    }

    /// Apply retention limits (blocked during shutdown: Figure 5(c) kills
    /// deletes at Prepare).
    pub fn expire(&mut self, now: i64) -> LeafResult<usize> {
        if !matches!(self.phase, LeafPhase::Alive) {
            return Err(LeafError::Unavailable {
                operation: "delete expired data",
                phase: self.phase.name(),
            });
        }
        let mut dropped = 0usize;
        let mut shrunk: Vec<String> = Vec::new();
        for table in self.store.map_mut().iter_mut() {
            let n = table.expire(self.config.retention, now);
            if n > 0 {
                dropped += n;
                shrunk.push(table.name().to_owned());
            }
        }
        for name in &shrunk {
            // The disk log must shrink with memory: expiry drops the
            // oldest blocks — the log's *prefix* — so without a rewrite a
            // later disk recovery resurrects expired rows, and the crash
            // path's memory↔disk prefix correspondence breaks.
            let table = self.store.map().get(name).expect("expired above");
            let result = Self::materialize_rows_from(table, 0).and_then(|rows| {
                self.disk
                    .rewrite_table(name, &rows)
                    .map_err(|e| e.to_string())
            });
            if let Err(reason) = result {
                // The rows already left memory; failing the request can't
                // undo that. Degrade the crash path instead: with the log
                // out of step, no future crash may reconcile against it.
                scuba_obs::counter!("leaf_expiry_rewrite_failures_total").inc();
                if self.config.checkpoint_enabled {
                    self.poison_wal(format!("expiry rewrite of {name:?}: {reason}"));
                }
            }
        }
        if dropped > 0 {
            // Expiry removed blocks the incremental writer thought were
            // the image's immutable prefix, and shrank row counts under
            // the WAL's start anchors. Rebuild the crash path.
            self.reset_crash_path();
        }
        Ok(dropped)
    }

    /// Flush buffered disk appends and fsync (the WAL too: its records
    /// become durable against machine failure on the same cadence as the
    /// backup they shadow). On success, a sync-coverage anchor lands in
    /// the WAL so a crash recovery can verify disk coverage by scanning
    /// only the bytes written after this point.
    pub fn sync_disk(&mut self) -> LeafResult<u64> {
        let bytes = self.disk.sync()?;
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.sync() {
                self.poison_wal(format!("fsync: {e}"));
            }
        }
        self.append_sync_anchor();
        Ok(bytes)
    }

    /// Record the just-synced per-table disk coverage in the WAL. The
    /// anchor is advisory (it bounds the reconcile scan); failing to
    /// write it is a WAL append failure like any other and poisons the
    /// crash path.
    fn append_sync_anchor(&mut self) {
        if self.wal.is_none() {
            return;
        }
        let mut entries: Vec<(String, u64, u64)> = Vec::new();
        for table in self.store.map().iter() {
            let len = match self.disk.file_len(table.name()) {
                Ok(len) => len,
                // Can't state the coverage: write no anchor (the next
                // recovery falls back to a full scan, which is always
                // correct).
                Err(_) => return,
            };
            entries.push((table.name().to_owned(), table.row_count() as u64, len));
        }
        let payload = encode_sync_anchor(&entries);
        if let Err(e) = self.wal.as_mut().unwrap().append(&payload) {
            self.poison_wal(format!("append anchor: {e}"));
        }
    }

    /// Clean shutdown via shared memory — Figures 5(a), 5(c), and 6.
    ///
    /// Walks the leaf through `Alive → CopyToShm → Exit` and every table
    /// through `Alive → Prepare → CopyToShm → Done`: stop accepting work,
    /// seal unsealed rows, flush the disk backup, copy everything into
    /// shared memory, commit the valid bit. On success the server is
    /// `Down` and holds no data; the replacement process recovers it with
    /// [`LeafServer::start`].
    pub fn shutdown_to_shm(&mut self, now: i64) -> LeafResult<ShutdownSummary> {
        if self.phase != LeafPhase::Alive {
            return Err(LeafError::Unavailable {
                operation: "shut down",
                phase: self.phase.name(),
            });
        }
        let mut leaf_state = LeafBackupState::Alive;

        // PREPARE (Figure 5(c)): reject new requests, kill deletes, wait
        // for in-flight adds/queries (synchronous here), flush to disk.
        self.set_phase(LeafPhase::Preparing);
        phase_failpoint("leaf::phase::preparing")?;
        let mut table_states: Vec<(String, TableBackupState)> = self
            .store
            .map()
            .names()
            .map(|n| (n.to_owned(), TableBackupState::Alive))
            .collect();
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::Prepare)?;
        }
        let sealed_rows = self
            .store
            .map()
            .iter()
            .map(|t| t.unsealed_rows())
            .sum::<usize>();
        self.store.seal_all(now)?;
        let disk_synced_bytes = self.sync_disk()?;

        // The planned shutdown supersedes the crash path: stop the
        // checkpointer and unlink its image *before* the backup rebuilds
        // the metadata region, so the two writers never interleave. Up to
        // this point any prepare failure still leaves the warm checkpoint
        // image for the replacement to crash-recover from.
        if let Some(ck) = self.checkpointer.take() {
            ck.teardown();
        }
        self.checkpoint_inflight = false;

        // COPY TO SHM (Figures 5(a) and 6).
        leaf_state = leaf_state.transition(LeafBackupState::CopyToShm)?;
        self.set_phase(LeafPhase::CopyingToShm);
        phase_failpoint("leaf::phase::copying")?;
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::CopyToShm)?;
        }
        let backup = match self.config.writer_compat {
            WriterCompat::Current => backup_to_shm_with(
                &mut self.store,
                &self.ns,
                SHM_LAYOUT_VERSION,
                CopyOptions::with_threads(self.config.copy_threads),
            )
            .map_err(|e| LeafError::Backup(e.to_string()))?,
            compat => self.backup_as_old_writer(compat)?,
        };
        if scuba_obs::enabled() {
            for &(phase, d) in &backup.phases.phases {
                self.emit_restart_span("restart.phase", "backup", phase.name(), d);
            }
        }
        for (_, st) in &mut table_states {
            *st = st.transition(TableBackupState::Done)?;
        }

        // The backup's valid bit is committed: the image covers every
        // row, so the WAL is obsolete. Drop it before exit.
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.truncate() {
                self.poison_wal(format!("truncate: {e}"));
            }
        }
        self.wal = None;

        // EXIT. A fault here stands on the narrowest ledge: the valid bit
        // is already committed, so a death is a *successful* shutdown and
        // the replacement memory-restores.
        phase_failpoint("leaf::phase::exit")?;
        leaf_state = leaf_state.transition(LeafBackupState::Exit)?;
        debug_assert_eq!(leaf_state, LeafBackupState::Exit);
        self.set_phase(LeafPhase::Down);

        Ok(ShutdownSummary {
            table_states,
            sealed_rows,
            disk_synced_bytes,
            backup,
        })
    }

    /// Shutdown copy step for a simulated pre-upgrade writer binary:
    /// drain the store's tables and install an old-format image via
    /// [`crate::compat`], so the *next* start — under the current binary —
    /// has to prove a cross-version memory restore.
    fn backup_as_old_writer(&mut self, compat: WriterCompat) -> LeafResult<BackupReport> {
        let start = Instant::now();
        let initial_footprint = self.store.map().heap_bytes();
        let tables: Vec<_> = self.store.map_mut().take_tables().into_values().collect();
        let bytes_copied = match compat {
            WriterCompat::LegacyV1 => compat::install_legacy_v1_image(&self.ns, &tables),
            WriterCompat::AgedV2 => compat::install_aged_v2_image(
                &self.ns,
                &tables,
                &compat::AgedImageOptions {
                    skippable_stranger: true,
                    required_stranger: false,
                },
            ),
            WriterCompat::Current => unreachable!("Current is handled by the normal backup path"),
        }
        .map_err(|e| LeafError::Backup(e.to_string()))?;
        scuba_obs::counter!("leaf_old_writer_backups").inc();

        // One manifest per table, one prelude per block, one chunk per
        // column — same accounting as the real writer.
        let chunks: usize = tables
            .iter()
            .map(|t| {
                1 + t
                    .blocks()
                    .iter()
                    .map(|b| 1 + b.columns().len())
                    .sum::<usize>()
            })
            .sum();
        let duration = start.elapsed();
        Ok(BackupReport {
            units: tables.len(),
            chunks,
            bytes_copied: bytes_copied as u64,
            duration,
            peak_footprint: initial_footprint + bytes_copied,
            initial_footprint,
            segment_names: (0..tables.len())
                .map(|i| self.ns.table_segment_name(i))
                .collect(),
            threads: 1,
            phases: PhaseBreakdown {
                op: "backup",
                phases: Vec::new(),
                total: duration,
                bytes: bytes_copied as u64,
                chunks: chunks as u64,
                units: tables.len(),
                threads: 1,
                complete: true,
                tables: Vec::new(),
            },
        })
    }

    /// Crash the leaf: drop everything without copying to shared memory.
    /// With the crash path off, the next start finds no valid bit and
    /// recovers from disk — the paper's §4 crash behaviour. With it on,
    /// the continuous checkpoint image and the WAL survive the death, and
    /// the next start replays the tail on top of the warm image.
    pub fn crash(&mut self) {
        // Ordering matters: the checkpointer must be *abandoned* — never
        // torn down — before anything else drops, so the dying process
        // can't unlink the very image its replacement is about to attach.
        // (Checkpoint segments are plain `ShmSegment`s, which never
        // unlink on drop; the hazard is a teardown-style exit.)
        if let Some(ck) = self.checkpointer.take() {
            ck.abandon();
        }
        self.wal = None; // close the fd; never truncate on a crash
                         // A SIGKILL loses the disk backup's userspace buffer too: drop it
                         // unflushed so the crash's durability is exactly the synced
                         // prefix, not whatever the allocator felt like flushing.
        self.disk.discard_buffered();
        // A crash mid-hydration abandons the workers: drop the receiver
        // so their sends fail and they exit; their mapped references (and
        // the store's) drop, unlinking the segments.
        if let Some(h) = self.hydrator.take() {
            h.queue.close();
            drop(h.rx);
            for worker in h.workers {
                let _ = worker.join();
            }
        }
        self.store = LeafStore::new();
        self.set_phase(LeafPhase::Down);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::table::RetentionLimits;
    use scuba_columnstore::Value;
    use scuba_query::{AggSpec, GroupKey};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    fn test_config(tag: &str) -> (LeafConfig, PathBuf) {
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("scuba_leaf_{tag}_{}_{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LeafConfig::new(id, format!("leafsrv{}", std::process::id()), &dir);
        (cfg, dir)
    }

    struct Cleanup(ShmNamespace, PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            self.0.unlink_all(16);
            let _ = std::fs::remove_dir_all(&self.1);
        }
    }

    fn fill(server: &mut LeafServer, rows: i64) {
        let batch: Vec<Row> = (0..rows)
            .map(|i| {
                Row::at(i)
                    .with("sev", if i % 10 == 0 { "error" } else { "info" })
                    .with("code", i % 7)
            })
            .collect();
        server.add_rows("logs", &batch, 0).unwrap();
    }

    #[test]
    fn serve_add_and_query() {
        let (cfg, dir) = test_config("serve");
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        assert_eq!(s.total_rows(), 100);
        let q = Query::new("logs", 0, 100)
            .group_by("sev")
            .aggregates(vec![AggSpec::Count]);
        let r = s.query(&q).unwrap();
        assert_eq!(
            r.groups[&GroupKey::Str("error".into())][0].finish(),
            Value::Int(10)
        );
        // Unknown table: empty, not an error.
        let r = s.query(&Query::new("nope", 0, 100)).unwrap();
        assert_eq!(r.rows_matched, 0);
    }

    #[test]
    fn shm_restart_cycle_preserves_data_and_is_fast_path() {
        let (cfg, dir) = test_config("cycle");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);

        let summary = s.shutdown_to_shm(10).unwrap();
        assert_eq!(s.phase(), LeafPhase::Down);
        assert_eq!(summary.sealed_rows, 1000);
        assert!(summary
            .table_states
            .iter()
            .all(|(_, st)| *st == TableBackupState::Done));
        assert!(summary.backup.bytes_copied > 0);
        assert_eq!(s.total_rows(), 0);
        drop(s); // old process exits

        let (s2, outcome) = LeafServer::start(cfg, 20, None).unwrap();
        assert!(outcome.is_memory(), "{outcome:?}");
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.total_rows(), 1000);
        let r = s2.query(&Query::new("logs", 0, 2000)).unwrap();
        assert_eq!(r.rows_matched, 1000);
    }

    #[test]
    fn crash_recovers_from_disk() {
        let (cfg, dir) = test_config("crash");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 500);
        s.sync_disk().unwrap();
        s.crash(); // no shared-memory copy
        drop(s);

        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        match &outcome {
            RecoveryOutcome::Disk { reason, stats } => {
                assert!(reason.contains("metadata unavailable"), "{reason}");
                assert_eq!(stats.rows, 500);
            }
            other => panic!("expected disk recovery, got {other:?}"),
        }
        assert_eq!(s2.total_rows(), 500);
    }

    #[test]
    fn crash_loses_unsynced_tail_only() {
        let (cfg, dir) = test_config("tail");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 300);
        s.sync_disk().unwrap();
        // 50 more rows, never synced: these are the "few thousand rows"
        // §4.1 accepts losing. BufWriter may or may not have flushed them;
        // a crash loses at most the buffered tail.
        let extra: Vec<Row> = (300..350).map(Row::at).collect();
        s.add_rows("logs", &extra, 0).unwrap();
        s.crash();
        drop(s);
        let (s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        let n = s2.total_rows();
        assert!((300..=350).contains(&n), "recovered {n} rows");
    }

    #[test]
    fn shm_recovery_disabled_goes_to_disk() {
        let (mut cfg, dir) = test_config("disabled");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        cfg.shm_recovery_enabled = false;
        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        match outcome {
            RecoveryOutcome::Disk { reason, .. } => {
                assert!(reason.contains("disabled"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s2.total_rows(), 100);
    }

    #[test]
    fn requests_rejected_while_down() {
        let (cfg, dir) = test_config("down");
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 10);
        s.shutdown_to_shm(0).unwrap();
        assert!(matches!(
            s.add_rows("logs", &[Row::at(1)], 0),
            Err(LeafError::Unavailable { .. })
        ));
        assert!(s.query(&Query::new("logs", 0, 10)).is_err());
        assert!(s.expire(0).is_err());
        assert!(s.shutdown_to_shm(0).is_err()); // double shutdown
                                                // Clean up shm left by the successful shutdown.
        s.namespace().unlink_all(4);
    }

    #[test]
    fn free_memory_reporting() {
        let (mut cfg, dir) = test_config("mem");
        cfg.memory_capacity = 1 << 20;
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        let before = s.free_memory();
        assert_eq!(before, 1 << 20);
        fill(&mut s, 1000);
        assert!(s.free_memory() < before);
        assert_eq!(s.free_memory(), (1 << 20) - s.memory_used());
    }

    #[test]
    fn expire_applies_retention() {
        let (mut cfg, dir) = test_config("exp");
        cfg.retention = RetentionLimits {
            max_age_secs: Some(50),
            max_bytes: None,
        };
        let mut s = LeafServer::new(cfg).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100); // times 0..99
        s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        // now = 200: whole block's max_time (99) < 150 cutoff -> dropped.
        let dropped = s.expire(200).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(s.total_rows(), 0);
    }

    #[test]
    fn disk_throttle_paces_recovery() {
        use scuba_diskstore::Throttle;
        let (cfg, dir) = test_config("throttle");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 2000);
        s.sync_disk().unwrap();
        let on_disk = {
            let b = scuba_diskstore::DiskBackup::open(&cfg.disk_root).unwrap();
            b.size_bytes().unwrap()
        };
        s.crash();
        drop(s);
        // Throttle the read phase to ~4x the file size per second: the
        // read alone must take at least ~1/4 s.
        let throttle = Throttle::new((on_disk * 4).max(1));
        let started = std::time::Instant::now();
        let (s2, outcome) = LeafServer::start(cfg, 0, Some(&throttle)).unwrap();
        assert!(!outcome.is_memory());
        assert_eq!(s2.total_rows(), 2000);
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(200),
            "throttle had no effect: {:?}",
            started.elapsed()
        );
    }

    /// Serializes the two-phase tests: they assert on the process-wide
    /// [`scuba_shmem::view_unlink_count`], and every hydration completing
    /// in another test would move it.
    static HYDRATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Order-insensitive, backing-insensitive digest of a query result.
    fn result_fingerprint(r: &LeafQueryResult) -> (u64, Vec<(String, Vec<Value>)>) {
        let mut groups: Vec<(String, Vec<Value>)> = r
            .groups
            .iter()
            .map(|(k, aggs)| (format!("{k:?}"), aggs.iter().map(|a| a.finish()).collect()))
            .collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        (r.rows_matched, groups)
    }

    #[test]
    fn two_phase_attach_serves_identical_results_before_hydration() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("twophase");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        let q = Query::new("logs", 0, 2000)
            .group_by("sev")
            .aggregates(vec![AggSpec::Count]);
        let expected = result_fingerprint(&s.query(&q).unwrap());
        s.shutdown_to_shm(10).unwrap();
        drop(s);

        let (mut s2, outcome) = LeafServer::start(cfg, 20, None).unwrap();
        assert!(outcome.is_memory());
        let rep = match outcome {
            RecoveryOutcome::MemoryAttached(rep) => rep,
            other => panic!("expected attach, got {other:?}"),
        };
        // Acceptance: attach performs zero per-value heap copies. The
        // footprint delta is block/schema metadata only — every column
        // buffer stays mapped.
        assert!(
            rep.heap_bytes_copied < 1024,
            "attach copied column bytes: {}",
            rep.heap_bytes_copied
        );
        assert!(rep.shm_bytes > 0);
        assert!(s2
            .store()
            .map()
            .iter()
            .flat_map(|t| t.blocks().iter())
            .all(|b| b.columns().iter().all(|c| c.is_mapped())));
        assert_eq!(s2.phase(), LeafPhase::Hydrating);
        assert!(s2.is_hydrating());
        assert!(s2.shm_resident() > 0);

        // Acceptance: a query over the shm-backed table is byte-identical
        // to the same query after hydration.
        let over_shm = result_fingerprint(&s2.query(&q).unwrap());
        assert_eq!(over_shm, expected);

        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert!(!s2.is_hydrating());
        assert_eq!(s2.shm_resident(), 0);
        assert!(s2.hydration_fallback_reason().is_none());
        let over_heap = result_fingerprint(&s2.query(&q).unwrap());
        assert_eq!(over_heap, expected);
        assert_eq!(s2.total_rows(), 1000);
    }

    #[test]
    fn segment_unlinked_exactly_once_and_never_while_read() {
        use scuba_shmem::{view_unlink_count, ShmSegment};
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("seglife");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 200);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        let seg_name = s2.namespace().table_segment_name(0);
        assert!(ShmSegment::exists(&seg_name));

        // A query snapshot: a cloned handle to a mapped block, held across
        // the table's hydration (and hypothetical drop).
        let held: Arc<RowBlock> =
            Arc::clone(&s2.store().map().get("logs").unwrap().mapped_blocks()[0]);
        let before = view_unlink_count();

        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.shm_resident(), 0);
        // The reader still borrows the mapping: not unlinked yet.
        assert!(
            ShmSegment::exists(&seg_name),
            "segment unlinked while a reader held it"
        );
        assert_eq!(view_unlink_count(), before);
        // The mapped bytes are still readable through the held block.
        assert_eq!(held.decode_rows().unwrap().len(), 200);

        drop(held); // last mapped reference
        assert!(!ShmSegment::exists(&seg_name));
        assert_eq!(view_unlink_count(), before + 1, "unlinked more than once");
    }

    #[test]
    fn hydration_crc_mismatch_falls_back_to_disk() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydcrc");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        s.shutdown_to_shm(0).unwrap(); // syncs disk before the copy
        drop(s);

        // Corrupt a payload byte deep in the table segment — the middle
        // of the largest column chunk, found by walking the TLV frames.
        // Attach's structural checks cannot see it; the deferred CRC at
        // hydration must.
        let ns = scuba_shmem::ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        let mut seg = scuba_shmem::ShmSegment::open(&ns.table_segment_name(0)).unwrap();
        let buf = seg.as_mut_slice();
        use scuba_restart::framing::{decode_header_v2, FRAME_HEADER_V2, TAG_END};
        let mut pos = 0usize;
        let mut fattest = (0usize, 0usize);
        loop {
            let (desc, len, _crc) = decode_header_v2(&buf[pos..pos + FRAME_HEADER_V2]);
            if desc.tag == TAG_END {
                break;
            }
            let payload = pos + FRAME_HEADER_V2;
            if desc.tag == crate::persist::TAG_COLUMN && len as usize > fattest.1 {
                fattest = (payload, len as usize);
            }
            pos = payload + len as usize;
        }
        assert!(fattest.1 > 0, "no column chunk found");
        // Flip mid-way through the RBC *data region* (offsets read from
        // the RBC header) so only the deferred payload CRC can tell.
        let rbc = &mut buf[fattest.0..fattest.0 + fattest.1];
        let data_off = u64::from_le_bytes(rbc[48..56].try_into().unwrap()) as usize;
        let footer_off = u64::from_le_bytes(rbc[56..64].try_into().unwrap()) as usize;
        rbc[(data_off + footer_off) / 2] ^= 0xFF;
        drop(seg);

        let (mut s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(
            matches!(outcome, RecoveryOutcome::MemoryAttached(_)),
            "attach should not notice payload corruption: {outcome:?}"
        );
        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        let reason = s2.hydration_fallback_reason().expect("fallback recorded");
        assert!(reason.contains("checksum"), "{reason}");
        // Disk had everything: full recovery despite the torn segment.
        assert_eq!(s2.total_rows(), 1000);
        assert_eq!(s2.shm_resident(), 0);
    }

    #[test]
    fn ingest_lands_in_heap_during_hydration() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydingest");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 500);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        assert_eq!(s2.phase(), LeafPhase::Hydrating);
        // Ingest is admitted mid-hydration and goes to fresh heap blocks.
        let heap_before = s2.memory_used();
        let extra: Vec<Row> = (500..600).map(|i| Row::at(i).with("sev", "late")).collect();
        s2.add_rows("logs", &extra, 30).unwrap();
        assert!(s2.memory_used() > heap_before);
        // Deletes stay blocked until hydration completes (same Figure 5(c)
        // conservatism as shutdown).
        assert!(s2.expire(1000).is_err());
        // Queries see old (mapped) and new (heap) rows together.
        let r = s2.query(&Query::new("logs", 0, 1000)).unwrap();
        assert_eq!(r.rows_matched, 600);

        s2.finish_hydration().unwrap();
        assert_eq!(s2.total_rows(), 600);
        assert!(s2.expire(0).is_ok());
    }

    #[test]
    fn memory_gauges_split_heap_and_shm() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydmem");
        cfg.restore_mode = RestoreMode::TwoPhase;
        cfg.memory_capacity = 8 << 20;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 1000);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        // Mid-hydration: every column byte is shm-resident; heap holds
        // only block/schema metadata. No byte counted twice.
        let shm_mid = s2.shm_resident();
        let heap_mid = s2.memory_used();
        assert!(shm_mid > 0);
        assert!(
            heap_mid < 1024,
            "column bytes on heap after attach: {heap_mid}"
        );
        assert_eq!(s2.free_memory(), (8 << 20) - shm_mid - heap_mid);

        s2.finish_hydration().unwrap();
        // After: the same column bytes are heap-resident, shm is empty —
        // the total footprint is unchanged.
        assert_eq!(s2.shm_resident(), 0);
        assert_eq!(s2.memory_used(), shm_mid + heap_mid);
        assert_eq!(s2.free_memory(), (8 << 20) - shm_mid - heap_mid);
    }

    #[test]
    fn poll_hydration_drains_incrementally() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydpoll");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        // Several sealed blocks so hydration has multiple results.
        for epoch in 0..4i64 {
            let rows: Vec<Row> = (0..100).map(|i| Row::at(epoch * 100 + i)).collect();
            s.add_rows("logs", &rows, 0).unwrap();
            s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        }
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, _) = LeafServer::start(cfg, 0, None).unwrap();
        assert_eq!(s2.hydration_pending(), 4);
        // Poll until done; each poll applies whatever the workers
        // finished without blocking.
        while s2.poll_hydration().unwrap() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.total_rows(), 400);
        assert_eq!(s2.shm_resident(), 0);
    }

    #[test]
    fn empty_leaf_attach_goes_straight_to_alive() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("hydempty");
        cfg.restore_mode = RestoreMode::TwoPhase;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        s.shutdown_to_shm(0).unwrap();
        drop(s);
        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(matches!(outcome, RecoveryOutcome::MemoryAttached(_)));
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert!(!s2.is_hydrating());
    }

    /// Tentpole acceptance: under OnAccess, a cold (never-queried) table
    /// keeps every byte mapped — zero copies — while results stay
    /// identical to the eager path, and query-touched blocks jump the
    /// hydration queue.
    #[test]
    fn on_access_hydrates_only_what_queries_touch() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("lazyhyd");
        cfg.restore_mode = RestoreMode::TwoPhase;
        cfg.hydration = HydrationMode::OnAccess;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 600); // "logs": the hot table
        let cold: Vec<Row> = (0..400).map(|i| Row::at(i).with("v", i)).collect();
        s.add_rows("archive", &cold, 0).unwrap();
        let q_hot = Query::new("logs", 0, 1000)
            .group_by("sev")
            .aggregates(vec![AggSpec::Count, AggSpec::Sum("code".into())]);
        let q_cold = Query::new("archive", 0, 1000).aggregates(vec![AggSpec::Sum("v".into())]);
        let want_hot = result_fingerprint(&s.query(&q_hot).unwrap());
        let want_cold = result_fingerprint(&s.query(&q_cold).unwrap());
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        let (mut s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(matches!(outcome, RecoveryOutcome::MemoryAttached(_)));
        assert_eq!(s2.phase(), LeafPhase::Hydrating);
        let total_blocks = s2.hydration_pending();
        let cold_blocks = s2.store().map().get("archive").unwrap().blocks().len();
        assert!(total_blocks > cold_blocks);

        // Nothing hydrates until a query touches it: everything parked.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(s2.poll_hydration().unwrap(), total_blocks);

        // Query the hot table: identical answer, served from mapped
        // bytes, and exactly its blocks released to the workers.
        assert_eq!(result_fingerprint(&s2.query(&q_hot).unwrap()), want_hot);
        loop {
            let pending = s2.poll_hydration().unwrap();
            if pending <= cold_blocks {
                break;
            }
            std::thread::yield_now();
        }
        // The cold table was never copied: every byte still mapped.
        assert!(s2
            .store()
            .map()
            .get("archive")
            .unwrap()
            .blocks()
            .iter()
            .all(|b| b.columns().iter().all(|c| c.is_mapped())));
        assert!(s2.shm_resident() > 0);
        // ... and still answers identically, in place.
        assert_eq!(result_fingerprint(&s2.query(&q_cold).unwrap()), want_cold);

        // Draining releases the parked remainder.
        s2.finish_hydration().unwrap();
        assert_eq!(s2.phase(), LeafPhase::Alive);
        assert_eq!(s2.shm_resident(), 0);
        assert_eq!(result_fingerprint(&s2.query(&q_cold).unwrap()), want_cold);
        assert_eq!(s2.total_rows(), 1000);
    }

    /// Satellite: a query that scans a corrupt mapped block fails (the
    /// first-touch CRC catches it), and the recorded poison turns into
    /// the full disk fallback at the next poll — data intact from disk.
    #[test]
    fn query_over_corrupt_mapped_block_fails_then_falls_back() {
        let _l = HYDRATE_LOCK.lock().unwrap();
        let (mut cfg, dir) = test_config("lazycrc");
        cfg.restore_mode = RestoreMode::TwoPhase;
        cfg.hydration = HydrationMode::OnAccess; // workers stay parked: no racing hydrator
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 800);
        s.shutdown_to_shm(0).unwrap();
        drop(s);

        // Same corruption shape as hydration_crc_mismatch_falls_back_to_disk:
        // a payload byte inside the fattest column chunk's data region.
        let ns = scuba_shmem::ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        let mut seg = scuba_shmem::ShmSegment::open(&ns.table_segment_name(0)).unwrap();
        let buf = seg.as_mut_slice();
        use scuba_restart::framing::{decode_header_v2, FRAME_HEADER_V2, TAG_END};
        let mut pos = 0usize;
        let mut fattest = (0usize, 0usize);
        loop {
            let (desc, len, _crc) = decode_header_v2(&buf[pos..pos + FRAME_HEADER_V2]);
            if desc.tag == TAG_END {
                break;
            }
            let payload = pos + FRAME_HEADER_V2;
            if desc.tag == crate::persist::TAG_COLUMN && len as usize > fattest.1 {
                fattest = (payload, len as usize);
            }
            pos = payload + len as usize;
        }
        assert!(fattest.1 > 0, "no column chunk found");
        let rbc = &mut buf[fattest.0..fattest.0 + fattest.1];
        let data_off = u64::from_le_bytes(rbc[48..56].try_into().unwrap()) as usize;
        let footer_off = u64::from_le_bytes(rbc[56..64].try_into().unwrap()) as usize;
        rbc[(data_off + footer_off) / 2] ^= 0xFF;
        drop(seg);

        let (mut s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(matches!(outcome, RecoveryOutcome::MemoryAttached(_)));
        let q = Query::new("logs", 0, 1000);
        let err = s2.query(&q).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // The poison condemns the attach at the next poll.
        assert_eq!(s2.poll_hydration().unwrap(), 0);
        assert_eq!(s2.phase(), LeafPhase::Alive);
        let reason = s2.hydration_fallback_reason().expect("fallback recorded");
        assert!(reason.contains("checksum"), "{reason}");
        // Disk recovery restored everything; queries serve heap bytes.
        assert_eq!(s2.total_rows(), 800);
        assert_eq!(s2.shm_resident(), 0);
        assert_eq!(s2.query(&q).unwrap().rows_matched, 800);
    }

    fn crash_config(tag: &str) -> (LeafConfig, PathBuf) {
        let (mut cfg, dir) = test_config(tag);
        cfg.checkpoint_enabled = true;
        (cfg, dir)
    }

    /// Tentpole acceptance + the drop-ordering regression (a dying
    /// process must never unlink the live checkpoint image): checkpoint,
    /// ingest a WAL tail, crash — the replacement attaches the warm image
    /// and replays just the tail.
    #[test]
    fn crash_recovers_fast_from_checkpoint_plus_wal_tail() {
        let (cfg, dir) = crash_config("ckfast");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 400);
        s.sync_disk().unwrap();
        s.checkpoint_and_wait().unwrap();
        assert_eq!(s.wal_bytes(), 0, "full-coverage checkpoint keeps the WAL");
        // Post-checkpoint tail: two batches, the second never disk-synced.
        let b1: Vec<Row> = (400..460).map(|i| Row::at(i).with("sev", "tail")).collect();
        s.add_rows("logs", &b1, 0).unwrap();
        s.sync_disk().unwrap();
        let b2: Vec<Row> = (460..500).map(|i| Row::at(i).with("sev", "tail")).collect();
        s.add_rows("logs", &b2, 0).unwrap();
        assert!(s.wal_bytes() > 0);
        s.crash();
        drop(s);

        // Drop-ordering regression: the image must still be linked and
        // valid after the old process died.
        let ns = ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        let meta = LeafMetadata::open(&ns).expect("checkpoint metadata survives the crash");
        let contents = meta.read().unwrap();
        assert!(contents.valid, "crash invalidated the checkpoint image");
        assert!(contents
            .segments
            .iter()
            .all(|e| e.flags & SEG_FLAG_CHECKPOINT != 0));
        drop(meta);

        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(outcome.is_memory(), "crash took the disk path: {outcome:?}");
        assert!(s2.recovered_from_checkpoint());
        assert_eq!(s2.wal_replayed_records(), 2);
        assert_eq!(s2.total_rows(), 500, "lost part of the WAL tail");
        if scuba_obs::enabled() {
            let name = scuba_obs::labeled_name(
                "leaf_crash_fast_recoveries_total",
                &[("leaf", s2.obs_key())],
            );
            assert_eq!(scuba_obs::counter_value(&name), Some(1));
        }
    }

    /// A torn WAL tail (partial last record) replays the durable prefix
    /// and stops cleanly at the last intact record — no fallback.
    #[test]
    fn torn_wal_tail_replays_durable_prefix() {
        let (cfg, dir) = crash_config("cktorn");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 200);
        s.checkpoint_and_wait().unwrap();
        let b1: Vec<Row> = (200..240).map(Row::at).collect();
        s.add_rows("logs", &b1, 0).unwrap();
        let b2: Vec<Row> = (240..265).map(Row::at).collect();
        s.add_rows("logs", &b2, 0).unwrap();
        s.crash();
        drop(s);

        // Tear mid-way into the last record, as a death inside write()
        // would.
        let wal_path = cfg.disk_root.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(outcome.is_memory(), "{outcome:?}");
        assert_eq!(s2.wal_replayed_records(), 1, "replay ran past the tear");
        assert_eq!(s2.total_rows(), 240);
    }

    /// A WAL append fault poisons the crash path: ingest keeps working,
    /// the image is torn down, and the next crash recovers from disk with
    /// exact durable fidelity.
    #[test]
    fn wal_append_fault_degrades_crash_to_disk() {
        let _x = scuba_faults::exclusive();
        scuba_faults::clear_all();
        let (cfg, dir) = crash_config("ckpoison");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        s.sync_disk().unwrap();
        s.checkpoint_and_wait().unwrap();

        scuba_faults::configure("restart::wal::append", "error@1").unwrap();
        let rows: Vec<Row> = (100..150).map(Row::at).collect();
        s.add_rows("logs", &rows, 0).unwrap(); // ingest survives the fault
        scuba_faults::clear_all();
        assert!(s.wal_poison_reason().unwrap().contains("append"));
        assert_eq!(s.total_rows(), 150);
        assert!(
            s.checkpoint_and_wait().is_err(),
            "poisoned path kept checkpointing"
        );
        s.crash();
        drop(s);

        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(
            !outcome.is_memory(),
            "poisoned image was trusted: {outcome:?}"
        );
        // Disk fidelity is exactly the synced prefix: the crash discarded
        // the buffered tail the way a SIGKILL would.
        assert_eq!(s2.total_rows(), 100);
    }

    /// An injected replay fault condemns the memory recovery; the leaf
    /// falls back to disk (and the stale WAL is truncated for the new
    /// life).
    #[test]
    fn wal_replay_fault_falls_back_to_disk() {
        let _x = scuba_faults::exclusive();
        scuba_faults::clear_all();
        let (cfg, dir) = crash_config("ckreplayfp");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 300);
        s.sync_disk().unwrap();
        s.checkpoint_and_wait().unwrap();
        let rows: Vec<Row> = (300..330).map(Row::at).collect();
        s.add_rows("logs", &rows, 0).unwrap();
        s.crash();
        drop(s);

        scuba_faults::configure("restart::wal::replay", "error@1").unwrap();
        let (s2, outcome) = LeafServer::start(cfg.clone(), 0, None).unwrap();
        scuba_faults::clear_all();
        match &outcome {
            RecoveryOutcome::Disk { reason, .. } => {
                assert!(reason.contains("wal unreadable"), "{reason}");
            }
            other => panic!("expected disk fallback, got {other:?}"),
        }
        assert_eq!(s2.total_rows(), 300, "disk fidelity is the synced prefix");
        assert_eq!(s2.wal_bytes(), 0, "stale WAL survived the disk fallback");
        drop(s2);
        // No orphaned checkpoint segments either way.
        let ns = ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        ns.unlink_all(16);
    }

    /// Steady-state serving with auto-checkpointing: the image trails by
    /// at most the interval, the crash recovers everything up to the last
    /// WAL record, and repeated crashes flip the image parity.
    #[test]
    fn auto_checkpoint_and_repeated_crashes() {
        let (mut cfg, dir) = crash_config("ckauto");
        cfg.checkpoint_interval_rows = 100;
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        for wave in 0..3i64 {
            for batch in 0..5i64 {
                let t0 = wave * 500 + batch * 100;
                let rows: Vec<Row> = (t0..t0 + 100).map(Row::at).collect();
                s.add_rows("logs", &rows, 0).unwrap();
            }
            // Settle the async auto cycle deterministically for the test.
            s.checkpoint_and_wait().unwrap();
            s.crash();
            drop(s);
            let (next, outcome) = LeafServer::start(cfg.clone(), 0, None).unwrap();
            assert!(outcome.is_memory(), "wave {wave}: {outcome:?}");
            assert_eq!(next.total_rows(), (wave as usize + 1) * 500);
            s = next;
        }
        drop(s);
        let ns = ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        ns.unlink_all(16);
    }

    /// Clean shutdown still wins over the crash path: the checkpointer is
    /// torn down, the planned backup image restores, and no checkpoint
    /// segment or WAL byte is left behind.
    #[test]
    fn clean_shutdown_supersedes_checkpoint_image() {
        let (cfg, dir) = crash_config("ckclean");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 250);
        s.checkpoint_and_wait().unwrap();
        let rows: Vec<Row> = (250..300).map(Row::at).collect();
        s.add_rows("logs", &rows, 0).unwrap();
        s.shutdown_to_shm(0).unwrap();
        drop(s);
        assert_eq!(
            std::fs::metadata(cfg.disk_root.join(WAL_FILE))
                .unwrap()
                .len(),
            8,
            "WAL not truncated by the clean shutdown"
        );
        let ns = ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        for parity in 0..2u32 {
            for index in 0..8 {
                assert!(
                    !scuba_shmem::ShmSegment::exists(&ns.checkpoint_segment_name(parity, index)),
                    "orphan checkpoint segment k{parity}_{index}"
                );
            }
        }
        let (s2, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(outcome.is_memory());
        assert!(!s2.recovered_from_checkpoint());
        assert_eq!(s2.total_rows(), 300);
    }

    /// Expiry invalidates the crash path (the image's immutable prefix
    /// changed): a crash right after expire goes to disk, and the next
    /// checkpoint rebuilds a fresh image.
    #[test]
    fn expire_resets_crash_path() {
        let (mut cfg, dir) = crash_config("ckexpire");
        cfg.retention = RetentionLimits {
            max_age_secs: Some(50),
            max_bytes: None,
        };
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100); // times 0..99
        s.sync_disk().unwrap();
        s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        s.checkpoint_and_wait().unwrap();
        assert_eq!(s.expire(200).unwrap(), 1); // drops the sealed block
        s.crash();
        drop(s);
        let (s2, outcome) = LeafServer::start(cfg.clone(), 200, None).unwrap();
        assert!(
            !outcome.is_memory(),
            "stale image served expired rows: {outcome:?}"
        );
        drop(s2);
        let ns = ShmNamespace::new(&cfg.shm_prefix, cfg.leaf_id).unwrap();
        ns.unlink_all(16);
    }

    /// REVIEW (high): rows that came back through WAL replay must reach
    /// the disk backup during recovery — a later disk-path recovery (the
    /// WAL is truncated by then) must still surface them.
    #[test]
    fn wal_replayed_rows_reach_disk_backup() {
        let (cfg, dir) = crash_config("ckreconcile");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 400);
        s.sync_disk().unwrap();
        s.checkpoint_and_wait().unwrap();
        // 100 tail rows, never disk-synced: after the crash they exist
        // only in the WAL and the warm image.
        let tail: Vec<Row> = (400..500).map(|i| Row::at(i).with("sev", "tail")).collect();
        s.add_rows("logs", &tail, 0).unwrap();
        s.crash();
        drop(s);

        let (mut s2, outcome) = LeafServer::start(cfg.clone(), 0, None).unwrap();
        assert!(outcome.is_memory(), "{outcome:?}");
        assert_eq!(s2.total_rows(), 500);
        // The reconcile must have re-appended the replayed tail durably.
        let backup = scuba_diskstore::DiskBackup::open(&cfg.disk_root).unwrap();
        assert_eq!(
            backup.coverage("logs", None).unwrap().rows,
            500,
            "replayed rows never reached the disk backup"
        );
        drop(backup);
        // The acid test: crash again immediately. The image's valid bit
        // was consumed by the recovery above and no checkpoint has run,
        // so this recovery is pure disk — it must still hold every row
        // the previous life was serving.
        s2.crash();
        drop(s2);
        let (s3, o3) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(!o3.is_memory(), "{o3:?}");
        assert_eq!(
            s3.total_rows(),
            500,
            "disk-path recovery lost WAL-replayed rows"
        );
    }

    /// REVIEW (medium): a fresh `new()` must not leave a dead
    /// predecessor's valid checkpoint image linked — crashing before the
    /// first checkpoint cycle would let the next start resurrect the
    /// abandoned life's data.
    #[test]
    fn first_boot_sweeps_stale_checkpoint_image() {
        let (cfg, dir) = crash_config("ckstale");
        let mut s1 = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s1.namespace().clone(), dir);
        fill(&mut s1, 300);
        s1.sync_disk().unwrap();
        s1.checkpoint_and_wait().unwrap();
        s1.crash(); // valid image + WAL left behind
        drop(s1);

        // Operator decision: boot a *fresh* leaf instead of recovering.
        // Its disk root is the same, but its life starts empty.
        let mut s2 = LeafServer::new(cfg.clone()).unwrap();
        assert_eq!(s2.total_rows(), 0);
        s2.crash(); // before any checkpoint cycle of the new life
        drop(s2);

        let (s3, outcome) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(
            !outcome.is_memory(),
            "stale predecessor image resurrected: {outcome:?}"
        );
        // Disk still holds the old life's synced rows — that is the
        // honest durable state; what must NOT happen is a memory
        // recovery from the abandoned image.
        assert_eq!(s3.total_rows(), 300);
    }

    /// Expiry must shrink the disk log along with memory: after dropping
    /// a block, a disk recovery surfaces only surviving + new rows, not
    /// resurrected expired ones.
    #[test]
    fn expire_rewrites_disk_backup() {
        let (mut cfg, dir) = test_config("exprw");
        cfg.retention = RetentionLimits {
            max_age_secs: Some(50),
            max_bytes: None,
        };
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100); // times 0..99
        s.sync_disk().unwrap();
        s.store.map_mut().get_mut("logs").unwrap().seal(0).unwrap();
        assert_eq!(s.expire(200).unwrap(), 1); // whole block expired
        let fresh: Vec<Row> = (200..220).map(|i| Row::at(i).with("sev", "new")).collect();
        s.add_rows("logs", &fresh, 200).unwrap();
        s.sync_disk().unwrap();
        s.crash();
        drop(s);

        let (s2, outcome) = LeafServer::start(cfg, 200, None).unwrap();
        assert!(!outcome.is_memory());
        assert_eq!(
            s2.total_rows(),
            20,
            "disk recovery resurrected expired rows"
        );
    }

    /// A torn tail in a `.rows` log is repaired during disk recovery, so
    /// rows appended afterwards are not hidden behind the garbage on the
    /// *next* recovery.
    #[test]
    fn torn_disk_tail_repaired_on_recovery() {
        let (cfg, dir) = test_config("tornrepair");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 100);
        s.sync_disk().unwrap();
        s.crash();
        drop(s);
        // Crash-torn tail: garbage bytes after the valid records.
        let path = cfg.disk_root.join("logs.rows");
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xEE; 11]).unwrap();
        drop(f);

        let (mut s2, outcome) = LeafServer::start(cfg.clone(), 0, None).unwrap();
        assert!(!outcome.is_memory());
        assert_eq!(s2.total_rows(), 100);
        let extra: Vec<Row> = (100..150).map(Row::at).collect();
        s2.add_rows("logs", &extra, 0).unwrap();
        s2.sync_disk().unwrap();
        s2.crash();
        drop(s2);
        let (s3, _) = LeafServer::start(cfg, 0, None).unwrap();
        assert_eq!(
            s3.total_rows(),
            150,
            "appends after a torn tail were unreadable"
        );
    }

    #[test]
    fn second_start_after_memory_recovery_uses_disk() {
        // The valid bit is consumed by the first restore; a second start
        // (e.g. crash right after recovery) must go to disk.
        let (cfg, dir) = test_config("second");
        let mut s = LeafServer::new(cfg.clone()).unwrap();
        let _c = Cleanup(s.namespace().clone(), dir);
        fill(&mut s, 50);
        s.shutdown_to_shm(0).unwrap();
        let (mut s2, o1) = LeafServer::start(cfg.clone(), 0, None).unwrap();
        assert!(o1.is_memory());
        s2.crash();
        drop(s2);
        let (s3, o2) = LeafServer::start(cfg, 0, None).unwrap();
        assert!(!o2.is_memory());
        assert_eq!(s3.total_rows(), 50);
    }
}
