//! Leaf server configuration.

use std::path::PathBuf;

use scuba_columnstore::table::RetentionLimits;

/// Which restore path [`crate::LeafServer::start`] takes when a valid
/// shared-memory image is present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMode {
    /// Classic Figure-7 restore: copy every chunk shm→heap before serving.
    Full,
    /// Two-phase zero-copy restore: *attach* segments read-only and serve
    /// queries over the mapped bytes immediately, then *hydrate* tables to
    /// heap in background workers, unlinking each segment when its last
    /// mapped reference drops.
    TwoPhase,
}

/// When the background hydrator copies mapped blocks to heap after a
/// [`RestoreMode::TwoPhase`] attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HydrationMode {
    /// Copy every mapped block as fast as the pool allows (the classic
    /// phase two). Time to *full* recovery is minimized.
    Eager,
    /// Access-driven: blocks start parked and hydrate only after a query
    /// touches them (query-touched blocks jump the queue). Cold tables
    /// may never be copied at all — queries serve them from the mapped
    /// bytes indefinitely, CRC-verified on first touch.
    /// [`crate::LeafServer::finish_hydration`] releases everything.
    OnAccess,
}

/// Which shared-memory image format [`crate::LeafServer::shutdown_to_shm`]
/// writes. Anything but `Current` simulates an *older* writer binary, so
/// upgrade waves (chaos, rollover) can prove that an old image restores
/// under the current reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterCompat {
    /// The current self-describing TLV layout.
    Current,
    /// The pre-refactor bare-framed layout (metadata layout version 1,
    /// positional chunks, manifest without a schema snapshot).
    LegacyV1,
    /// An early TLV writer: v2 framing but v1-versioned manifests (no
    /// schema snapshot — the reader's shim upgrades them) plus an unknown
    /// skippable chunk the reader must ignore.
    AgedV2,
}

/// Static configuration for one leaf server process.
#[derive(Debug, Clone)]
pub struct LeafConfig {
    /// Machine-local leaf index (0..N-1; the paper runs N = 8 per
    /// machine, §2).
    pub leaf_id: u32,
    /// Cluster prefix for shared-memory segment names (keeps deployments
    /// and tests apart).
    pub shm_prefix: String,
    /// Directory holding this leaf's disk backup.
    pub disk_root: PathBuf,
    /// Memory capacity in bytes, reported to tailers for two-random-choice
    /// placement ("how much free memory they have", §2).
    pub memory_capacity: usize,
    /// Retention limits applied by [`crate::LeafServer::expire`].
    pub retention: RetentionLimits,
    /// Whether memory (shared-memory) recovery is enabled — the "memory
    /// recovery disabled" edge of Figure 5(b) when false.
    pub shm_recovery_enabled: bool,
    /// Worker threads for the backup/restore copy pipeline. 0 means auto
    /// (min(cores, 4)); the `SCUBA_COPY_THREADS` env var overrides both.
    pub copy_threads: usize,
    /// How to bring a valid shared-memory image back: copy-everything
    /// ([`RestoreMode::Full`]) or attach-then-hydrate
    /// ([`RestoreMode::TwoPhase`]).
    pub restore_mode: RestoreMode,
    /// Under [`RestoreMode::TwoPhase`], whether hydration is eager or
    /// access-driven.
    pub hydration: HydrationMode,
    /// Which image format shutdown writes — [`WriterCompat::Current`] in
    /// production; the older formats simulate a pre-upgrade binary for
    /// mixed-version restart waves.
    pub writer_compat: WriterCompat,
    /// Whether the continuous checkpointer + WAL crash-restart path is on.
    /// Off by default: the paper's planned-shutdown-only protocol is the
    /// baseline, and the crash path is the opt-in extension.
    pub checkpoint_enabled: bool,
    /// Auto-checkpoint after this many rows have landed since the last
    /// checkpoint. 0 means explicit-only ([`crate::LeafServer::
    /// checkpoint_and_wait`]); tests and chaos use explicit mode for
    /// determinism.
    pub checkpoint_interval_rows: usize,
    /// Restart trace id stamped on every backup/restore/WAL-replay/
    /// hydration span this leaf emits, letting one telemetry query
    /// reconstruct a fleet rollover as a per-leaf timeline. 0 means
    /// "untraced" — spans fall back to the process-wide
    /// `scuba_obs::current_trace_id()`.
    pub trace_id: u64,
}

impl LeafConfig {
    /// A reasonable config for tests and examples.
    pub fn new(leaf_id: u32, shm_prefix: impl Into<String>, disk_root: impl Into<PathBuf>) -> Self {
        LeafConfig {
            leaf_id,
            shm_prefix: shm_prefix.into(),
            disk_root: disk_root.into(),
            memory_capacity: 512 << 20,
            retention: RetentionLimits::NONE,
            shm_recovery_enabled: true,
            copy_threads: 0,
            restore_mode: RestoreMode::Full,
            hydration: HydrationMode::Eager,
            writer_compat: WriterCompat::Current,
            checkpoint_enabled: false,
            checkpoint_interval_rows: 0,
            trace_id: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = LeafConfig::new(3, "test", "/tmp/x");
        assert_eq!(c.leaf_id, 3);
        assert!(c.shm_recovery_enabled);
        assert_eq!(c.retention, RetentionLimits::NONE);
        assert!(c.memory_capacity > 0);
        assert_eq!(c.restore_mode, RestoreMode::Full);
    }
}
