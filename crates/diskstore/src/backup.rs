//! The per-leaf disk backup directory and the slow (row-format) recovery
//! path.
//!
//! §4.1: shutdown "finishes any pending synchronization with the data on
//! disk ... only the sections of data that have changed since the last
//! synchronization point need to be updated. (During normal operation,
//! disk writes are asynchronous.)" We model this with buffered appends
//! plus an explicit [`DiskBackup::sync`] that flushes and fsyncs.
//!
//! Recovery reads each table's log, parses every record, and rebuilds the
//! columnar state through the normal builder — the read phase and the
//! translate phase are timed separately because their ratio (minutes vs
//! hours in the paper) is the whole motivation for experiment E8.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use scuba_columnstore::{LeafMap, Row, Table};

use crate::error::{DiskError, DiskResult};
use crate::rowformat::{read_record, write_record, ReadOutcome};
use crate::throttle::Throttle;

/// File extension for row-format table logs.
const ROWS_EXT: &str = "rows";

/// Timing breakdown of a disk recovery (experiment E8).
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Tables recovered.
    pub tables: usize,
    /// Rows parsed and rebuilt.
    pub rows: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Time spent reading files.
    pub read_duration: Duration,
    /// Time spent parsing records and rebuilding columnar blocks — the
    /// "translating it to its in-memory format" cost (§1).
    pub translate_duration: Duration,
    /// Rows lost to torn tails (crash-truncated appends), per table.
    pub torn_tails: usize,
}

/// A leaf server's on-disk backup: one append-only row log per table
/// under a root directory.
#[derive(Debug)]
pub struct DiskBackup {
    root: PathBuf,
    /// Open buffered writers, one per table.
    writers: BTreeMap<String, BufWriter<File>>,
    /// Bytes appended since the last sync (for sync-cost accounting).
    dirty_bytes: u64,
}

/// Map a table name to a safe file stem (hex-escape anything exotic).
fn file_stem(table: &str) -> DiskResult<String> {
    if table.is_empty() || table.len() > 200 {
        return Err(DiskError::BadTableName(table.to_owned()));
    }
    let mut out = String::with_capacity(table.len());
    for c in table.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('%');
            for b in c.to_string().bytes() {
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    Ok(out)
}

/// Inverse of [`file_stem`].
fn table_name(stem: &str) -> Option<String> {
    let mut out = Vec::new();
    let bytes = stem.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return None;
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl DiskBackup {
    /// Open (creating if needed) the backup directory.
    pub fn open(root: impl Into<PathBuf>) -> DiskResult<DiskBackup> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| DiskError::io(&root, e))?;
        Ok(DiskBackup {
            root,
            writers: BTreeMap::new(),
            dirty_bytes: 0,
        })
    }

    /// The backup directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn table_path(&self, table: &str) -> DiskResult<PathBuf> {
        Ok(self.root.join(format!("{}.{ROWS_EXT}", file_stem(table)?)))
    }

    /// Append rows to a table's log (asynchronous: buffered, not yet
    /// durable — call [`sync`](Self::sync) to make it so).
    pub fn append(&mut self, table: &str, rows: &[Row]) -> DiskResult<()> {
        let path = self.table_path(table)?;
        if !self.writers.contains_key(table) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| DiskError::io(&path, e))?;
            self.writers
                .insert(table.to_owned(), BufWriter::with_capacity(1 << 16, file));
        }
        let w = self.writers.get_mut(table).expect("inserted above");
        let mut buf = Vec::new();
        for row in rows {
            write_record(row, &mut buf);
        }
        match scuba_faults::check("diskstore::append") {
            Some(scuba_faults::Fault::ShortWrite(n)) => {
                // A torn append: part of the batch reaches the log, then
                // the write fails — the §4.1 crash shape the record CRCs
                // exist to detect.
                let n = n.min(buf.len());
                w.write_all(&buf[..n])
                    .map_err(|e| DiskError::io(&path, e))?;
                self.dirty_bytes += n as u64;
                return Err(DiskError::Io {
                    path,
                    source: std::io::Error::other("injected fault at 'diskstore::append'"),
                });
            }
            Some(_) => {
                return Err(DiskError::Io {
                    path,
                    source: std::io::Error::other("injected fault at 'diskstore::append'"),
                });
            }
            None => {}
        }
        w.write_all(&buf).map_err(|e| DiskError::io(&path, e))?;
        self.dirty_bytes += buf.len() as u64;
        Ok(())
    }

    /// Drop every buffered, not-yet-written byte without flushing — what
    /// a SIGKILL does to the userspace buffer. The in-process crash
    /// simulation calls this so its durability contract matches a real
    /// process death instead of quietly flushing on drop.
    pub fn discard_buffered(&mut self) {
        for (_, writer) in std::mem::take(&mut self.writers) {
            // `into_parts` hands the buffer back unwritten; dropping it
            // (and the file) loses exactly the unsynced tail.
            let _ = writer.into_parts();
        }
        self.dirty_bytes = 0;
    }

    /// Flush and fsync every table log — the shutdown step "finishes any
    /// pending synchronization with the data on disk" (§4.1). Returns the
    /// number of dirty bytes made durable.
    pub fn sync(&mut self) -> DiskResult<u64> {
        if scuba_faults::check("diskstore::sync").is_some() {
            return Err(DiskError::Io {
                path: self.root.clone(),
                source: std::io::Error::other("injected fault at 'diskstore::sync'"),
            });
        }
        for (table, w) in &mut self.writers {
            let path = self.root.join(format!(
                "{}.{ROWS_EXT}",
                file_stem(table).expect("validated on append")
            ));
            w.flush().map_err(|e| DiskError::io(&path, e))?;
            w.get_ref()
                .sync_data()
                .map_err(|e| DiskError::io(&path, e))?;
        }
        let synced = std::mem::take(&mut self.dirty_bytes);
        scuba_obs::counter!("diskstore_syncs").inc();
        scuba_obs::counter!("diskstore_synced_bytes").add(synced);
        Ok(synced)
    }

    /// Bytes appended since the last sync.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Tables present on disk.
    pub fn tables(&self) -> DiskResult<Vec<String>> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| DiskError::io(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DiskError::io(&self.root, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(ROWS_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Some(name) = table_name(stem) {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Full disk recovery: read every table log, parse every record, and
    /// rebuild the leaf's in-memory state. `throttle`, if given, paces the
    /// read phase at a simulated device bandwidth. Torn tails are dropped
    /// (§4.1). `now` stamps the rebuilt blocks.
    pub fn recover(
        &self,
        now: i64,
        throttle: Option<&Throttle>,
    ) -> DiskResult<(LeafMap, RecoveryStats)> {
        let tables = self.tables()?;
        self.recover_tables(&tables, now, throttle)
    }

    /// Disk-recover only the named tables (per-table fallback: the rest of
    /// the leaf came back through shared memory and is not re-read). Names
    /// with no on-disk log are skipped silently — a skipped shm unit that
    /// was never synced has nothing to recover.
    pub fn recover_tables(
        &self,
        tables: &[String],
        now: i64,
        throttle: Option<&Throttle>,
    ) -> DiskResult<(LeafMap, RecoveryStats)> {
        let on_disk = self.tables()?;
        let mut map = LeafMap::new();
        let mut stats = RecoveryStats::default();
        for table in tables.iter().filter(|t| on_disk.contains(t)) {
            let path = self.table_path(table)?;

            // Phase 1: read the raw bytes ("Reading about 120 GB ... takes
            // 20-25 minutes").
            let read_start = Instant::now();
            let mut file = File::open(&path).map_err(|e| DiskError::io(&path, e))?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)
                .map_err(|e| DiskError::io(&path, e))?;
            if let Some(t) = throttle {
                t.consume(bytes.len() as u64);
            }
            stats.bytes_read += bytes.len() as u64;
            stats.read_duration += read_start.elapsed();

            // Phase 2: translate to the in-memory format ("takes 2.5-3
            // hours") — parse records, push rows through the builder.
            let translate_start = Instant::now();
            let mut t = Table::new(table, now);
            let mut pos = 0usize;
            loop {
                match read_record(&bytes, &mut pos) {
                    ReadOutcome::Record(row) => {
                        t.append(&row, now)?;
                        stats.rows += 1;
                    }
                    ReadOutcome::End => break,
                    ReadOutcome::Torn(_) => {
                        stats.torn_tails += 1;
                        break;
                    }
                }
            }
            t.seal(now)?;
            stats.translate_duration += translate_start.elapsed();
            map.insert(t);
            stats.tables += 1;
        }
        // Mirror the two §4.1 phases into the registry so disk recoveries
        // show up next to the shared-memory phase counters.
        scuba_obs::counter!("diskstore_recoveries").inc();
        scuba_obs::counter!("diskstore_recovered_rows").add(stats.rows);
        scuba_obs::counter!("diskstore_recovered_bytes").add(stats.bytes_read);
        scuba_obs::counter!("diskstore_torn_tails").add(stats.torn_tails as u64);
        scuba_obs::counter!("diskstore_read_nanos").add(stats.read_duration.as_nanos() as u64);
        scuba_obs::counter!("diskstore_translate_nanos")
            .add(stats.translate_duration.as_nanos() as u64);
        Ok((map, stats))
    }

    /// Delete a table's log (expiry of an entire table).
    pub fn remove_table(&mut self, table: &str) -> DiskResult<bool> {
        self.writers.remove(table);
        let path = self.table_path(table)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(DiskError::io(&path, e)),
        }
    }

    /// Total size of the backup on disk.
    pub fn size_bytes(&self) -> DiskResult<u64> {
        let mut total = 0;
        for table in self.tables()? {
            let path = self.table_path(&table)?;
            total += fs::metadata(&path)
                .map_err(|e| DiskError::io(&path, e))?
                .len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scuba_disk_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::at(i).with("v", i * 2).with("s", format!("r{i}")))
            .collect()
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let dir = tmpdir("rt");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("events", &rows(100)).unwrap();
        b.append("metrics", &rows(10)).unwrap();
        assert!(b.dirty_bytes() > 0);
        let synced = b.sync().unwrap();
        assert!(synced > 0);
        assert_eq!(b.dirty_bytes(), 0);

        let (map, stats) = b.recover(999, None).unwrap();
        assert_eq!(stats.tables, 2);
        assert_eq!(stats.rows, 110);
        assert_eq!(stats.torn_tails, 0);
        assert_eq!(map.get("events").unwrap().row_count(), 100);
        assert_eq!(map.get("metrics").unwrap().row_count(), 10);
        // Spot-check data integrity through the columnar rebuild.
        let block = &map.get("events").unwrap().blocks()[0];
        assert_eq!(block.cell(5, "v").unwrap(), Value::Int(10));
        assert_eq!(block.cell(5, "s").unwrap(), Value::from("r5"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_accumulate_across_handles() {
        let dir = tmpdir("acc");
        {
            let mut b = DiskBackup::open(&dir).unwrap();
            b.append("t", &rows(5)).unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = DiskBackup::open(&dir).unwrap();
            b.append("t", &rows(5)).unwrap();
            b.sync().unwrap();
        }
        let b = DiskBackup::open(&dir).unwrap();
        let (map, stats) = b.recover(0, None).unwrap();
        assert_eq!(stats.rows, 10);
        assert_eq!(map.get("t").unwrap().row_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let dir = tmpdir("torn");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(50)).unwrap();
        b.sync().unwrap();
        // Simulate a crash mid-append: chop bytes off the end.
        let path = dir.join("t.rows");
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();

        let (map, stats) = b.recover(0, None).unwrap();
        assert_eq!(stats.torn_tails, 1);
        assert_eq!(map.get("t").unwrap().row_count(), 49); // lost exactly the torn row
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exotic_table_names_round_trip() {
        let dir = tmpdir("names");
        let mut b = DiskBackup::open(&dir).unwrap();
        let weird = "ads.revenue/us-east (v2)";
        b.append(weird, &rows(3)).unwrap();
        b.sync().unwrap();
        assert_eq!(b.tables().unwrap(), vec![weird.to_owned()]);
        let (map, _) = b.recover(0, None).unwrap();
        assert_eq!(map.get(weird).unwrap().row_count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_table_names_rejected() {
        let dir = tmpdir("bad");
        let mut b = DiskBackup::open(&dir).unwrap();
        assert!(b.append("", &rows(1)).is_err());
        assert!(b.append(&"x".repeat(500), &rows(1)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_table_deletes_log() {
        let dir = tmpdir("rm");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("gone", &rows(2)).unwrap();
        b.sync().unwrap();
        assert!(b.remove_table("gone").unwrap());
        assert!(!b.remove_table("gone").unwrap());
        assert!(b.tables().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_of_empty_backup() {
        let dir = tmpdir("empty");
        let b = DiskBackup::open(&dir).unwrap();
        let (map, stats) = b.recover(0, None).unwrap();
        assert!(map.is_empty());
        assert_eq!(stats.rows, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_accounting() {
        let dir = tmpdir("size");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(100)).unwrap();
        b.sync().unwrap();
        assert!(b.size_bytes().unwrap() > 1000);
        fs::remove_dir_all(&dir).unwrap();
    }
}
