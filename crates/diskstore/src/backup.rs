//! The per-leaf disk backup directory and the slow (row-format) recovery
//! path.
//!
//! §4.1: shutdown "finishes any pending synchronization with the data on
//! disk ... only the sections of data that have changed since the last
//! synchronization point need to be updated. (During normal operation,
//! disk writes are asynchronous.)" We model this with buffered appends
//! plus an explicit [`DiskBackup::sync`] that flushes and fsyncs.
//!
//! Recovery reads each table's log, parses every record, and rebuilds the
//! columnar state through the normal builder — the read phase and the
//! translate phase are timed separately because their ratio (minutes vs
//! hours in the paper) is the whole motivation for experiment E8.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use scuba_columnstore::{LeafMap, Row, Table};

use crate::error::{DiskError, DiskResult};
use crate::rowformat::{read_record, skip_record, write_record, ReadOutcome, SkipOutcome};
use crate::throttle::Throttle;

/// File extension for row-format table logs.
const ROWS_EXT: &str = "rows";

/// Timing breakdown of a disk recovery (experiment E8).
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Tables recovered.
    pub tables: usize,
    /// Rows parsed and rebuilt.
    pub rows: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Time spent reading files.
    pub read_duration: Duration,
    /// Time spent parsing records and rebuilding columnar blocks — the
    /// "translating it to its in-memory format" cost (§1).
    pub translate_duration: Duration,
    /// Rows lost to torn tails (crash-truncated appends), per table.
    pub torn_tails: usize,
}

/// Result of a [`DiskBackup::coverage`] scan: how much of a table's log
/// is a valid record prefix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCoverage {
    /// Valid records in the prefix (including any trusted hint rows).
    pub rows: u64,
    /// Byte offset just past the last valid record.
    pub valid_len: u64,
    /// Total file length (`> valid_len` means a torn tail).
    pub file_len: u64,
    /// Bytes actually read and walked by this scan (observability: with a
    /// fresh sync hint this is ~0 even for a large log).
    pub scanned_bytes: u64,
}

/// A leaf server's on-disk backup: one append-only row log per table
/// under a root directory.
#[derive(Debug)]
pub struct DiskBackup {
    root: PathBuf,
    /// Open buffered writers, one per table.
    writers: BTreeMap<String, BufWriter<File>>,
    /// Bytes appended since the last sync (for sync-cost accounting).
    dirty_bytes: u64,
}

/// Map a table name to a safe file stem (hex-escape anything exotic).
fn file_stem(table: &str) -> DiskResult<String> {
    if table.is_empty() || table.len() > 200 {
        return Err(DiskError::BadTableName(table.to_owned()));
    }
    let mut out = String::with_capacity(table.len());
    for c in table.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            out.push(c);
        } else {
            out.push('%');
            for b in c.to_string().bytes() {
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    Ok(out)
}

/// Inverse of [`file_stem`].
fn table_name(stem: &str) -> Option<String> {
    let mut out = Vec::new();
    let bytes = stem.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return None;
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl DiskBackup {
    /// Open (creating if needed) the backup directory.
    pub fn open(root: impl Into<PathBuf>) -> DiskResult<DiskBackup> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| DiskError::io(&root, e))?;
        Ok(DiskBackup {
            root,
            writers: BTreeMap::new(),
            dirty_bytes: 0,
        })
    }

    /// The backup directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn table_path(&self, table: &str) -> DiskResult<PathBuf> {
        Ok(self.root.join(format!("{}.{ROWS_EXT}", file_stem(table)?)))
    }

    /// Append rows to a table's log (asynchronous: buffered, not yet
    /// durable — call [`sync`](Self::sync) to make it so).
    pub fn append(&mut self, table: &str, rows: &[Row]) -> DiskResult<()> {
        let path = self.table_path(table)?;
        if !self.writers.contains_key(table) {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| DiskError::io(&path, e))?;
            self.writers
                .insert(table.to_owned(), BufWriter::with_capacity(1 << 16, file));
        }
        let w = self.writers.get_mut(table).expect("inserted above");
        let mut buf = Vec::new();
        for row in rows {
            write_record(row, &mut buf);
        }
        match scuba_faults::check("diskstore::append") {
            Some(scuba_faults::Fault::ShortWrite(n)) => {
                // A torn append: part of the batch reaches the log, then
                // the write fails — the §4.1 crash shape the record CRCs
                // exist to detect.
                let n = n.min(buf.len());
                w.write_all(&buf[..n])
                    .map_err(|e| DiskError::io(&path, e))?;
                self.dirty_bytes += n as u64;
                return Err(DiskError::Io {
                    path,
                    source: std::io::Error::other("injected fault at 'diskstore::append'"),
                });
            }
            Some(_) => {
                return Err(DiskError::Io {
                    path,
                    source: std::io::Error::other("injected fault at 'diskstore::append'"),
                });
            }
            None => {}
        }
        w.write_all(&buf).map_err(|e| DiskError::io(&path, e))?;
        self.dirty_bytes += buf.len() as u64;
        Ok(())
    }

    /// Drop every buffered, not-yet-written byte without flushing — what
    /// a SIGKILL does to the userspace buffer. The in-process crash
    /// simulation calls this so its durability contract matches a real
    /// process death instead of quietly flushing on drop.
    pub fn discard_buffered(&mut self) {
        for (_, writer) in std::mem::take(&mut self.writers) {
            // `into_parts` hands the buffer back unwritten; dropping it
            // (and the file) loses exactly the unsynced tail.
            let _ = writer.into_parts();
        }
        self.dirty_bytes = 0;
    }

    /// Flush and fsync every table log — the shutdown step "finishes any
    /// pending synchronization with the data on disk" (§4.1). Returns the
    /// number of dirty bytes made durable.
    pub fn sync(&mut self) -> DiskResult<u64> {
        if scuba_faults::check("diskstore::sync").is_some() {
            return Err(DiskError::Io {
                path: self.root.clone(),
                source: std::io::Error::other("injected fault at 'diskstore::sync'"),
            });
        }
        for (table, w) in &mut self.writers {
            let path = self.root.join(format!(
                "{}.{ROWS_EXT}",
                file_stem(table).expect("validated on append")
            ));
            w.flush().map_err(|e| DiskError::io(&path, e))?;
            w.get_ref()
                .sync_data()
                .map_err(|e| DiskError::io(&path, e))?;
        }
        let synced = std::mem::take(&mut self.dirty_bytes);
        scuba_obs::counter!("diskstore_syncs").inc();
        scuba_obs::counter!("diskstore_synced_bytes").add(synced);
        Ok(synced)
    }

    /// Bytes appended since the last sync.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Tables present on disk.
    pub fn tables(&self) -> DiskResult<Vec<String>> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| DiskError::io(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DiskError::io(&self.root, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(ROWS_EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Some(name) = table_name(stem) {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Full disk recovery: read every table log, parse every record, and
    /// rebuild the leaf's in-memory state. `throttle`, if given, paces the
    /// read phase at a simulated device bandwidth. Torn tails are dropped
    /// (§4.1). `now` stamps the rebuilt blocks.
    pub fn recover(
        &self,
        now: i64,
        throttle: Option<&Throttle>,
    ) -> DiskResult<(LeafMap, RecoveryStats)> {
        let tables = self.tables()?;
        self.recover_tables(&tables, now, throttle)
    }

    /// Disk-recover only the named tables (per-table fallback: the rest of
    /// the leaf came back through shared memory and is not re-read). Names
    /// with no on-disk log are skipped silently — a skipped shm unit that
    /// was never synced has nothing to recover.
    pub fn recover_tables(
        &self,
        tables: &[String],
        now: i64,
        throttle: Option<&Throttle>,
    ) -> DiskResult<(LeafMap, RecoveryStats)> {
        let on_disk = self.tables()?;
        let mut map = LeafMap::new();
        let mut stats = RecoveryStats::default();
        for table in tables.iter().filter(|t| on_disk.contains(t)) {
            let path = self.table_path(table)?;

            // Phase 1: read the raw bytes ("Reading about 120 GB ... takes
            // 20-25 minutes").
            let read_start = Instant::now();
            let mut file = File::open(&path).map_err(|e| DiskError::io(&path, e))?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)
                .map_err(|e| DiskError::io(&path, e))?;
            if let Some(t) = throttle {
                t.consume(bytes.len() as u64);
            }
            stats.bytes_read += bytes.len() as u64;
            stats.read_duration += read_start.elapsed();

            // Phase 2: translate to the in-memory format ("takes 2.5-3
            // hours") — parse records, push rows through the builder.
            let translate_start = Instant::now();
            let mut t = Table::new(table, now);
            let mut pos = 0usize;
            loop {
                match read_record(&bytes, &mut pos) {
                    ReadOutcome::Record(row) => {
                        t.append(&row, now)?;
                        stats.rows += 1;
                    }
                    ReadOutcome::End => break,
                    ReadOutcome::Torn(_) => {
                        stats.torn_tails += 1;
                        break;
                    }
                }
            }
            t.seal(now)?;
            stats.translate_duration += translate_start.elapsed();
            map.insert(t);
            stats.tables += 1;
        }
        // Mirror the two §4.1 phases into the registry so disk recoveries
        // show up next to the shared-memory phase counters.
        scuba_obs::counter!("diskstore_recoveries").inc();
        scuba_obs::counter!("diskstore_recovered_rows").add(stats.rows);
        scuba_obs::counter!("diskstore_recovered_bytes").add(stats.bytes_read);
        scuba_obs::counter!("diskstore_torn_tails").add(stats.torn_tails as u64);
        scuba_obs::counter!("diskstore_read_nanos").add(stats.read_duration.as_nanos() as u64);
        scuba_obs::counter!("diskstore_translate_nanos")
            .add(stats.translate_duration.as_nanos() as u64);
        Ok((map, stats))
    }

    /// On-disk length of a table's log (0 when absent). Buffered appends
    /// not yet flushed are invisible — after a [`Self::sync`] this is the
    /// durable length.
    pub fn file_len(&self, table: &str) -> DiskResult<u64> {
        let path = self.table_path(table)?;
        match fs::metadata(&path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(DiskError::io(&path, e)),
        }
    }

    /// Count the valid-record prefix of a table's log.
    ///
    /// `synced_hint`, when present, is a `(rows, bytes)` coverage anchor
    /// the caller trusts (e.g. recorded in the WAL after a successful
    /// sync): the first `rows` records are known to occupy exactly the
    /// first `bytes` bytes, so the scan starts there and only walks the
    /// suffix. A hint whose byte offset exceeds the file is ignored and
    /// the whole file is scanned.
    ///
    /// Reads only what is on disk — buffered, unflushed appends are
    /// invisible. Meant for recovery-time reconciliation, where the
    /// writers are empty.
    pub fn coverage(
        &self,
        table: &str,
        synced_hint: Option<(u64, u64)>,
    ) -> DiskResult<TableCoverage> {
        let path = self.table_path(table)?;
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(TableCoverage::default())
            }
            Err(e) => return Err(DiskError::io(&path, e)),
        };
        let file_len = file.metadata().map_err(|e| DiskError::io(&path, e))?.len();
        let (mut rows, start) = match synced_hint {
            Some((r, b)) if b <= file_len => (r, b),
            _ => (0, 0),
        };
        file.seek(SeekFrom::Start(start))
            .map_err(|e| DiskError::io(&path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| DiskError::io(&path, e))?;
        let mut pos = 0usize;
        let mut valid_len = start;
        while let SkipOutcome::Skipped = skip_record(&bytes, &mut pos) {
            rows += 1;
            valid_len = start + pos as u64;
        }
        Ok(TableCoverage {
            rows,
            valid_len,
            file_len,
            scanned_bytes: bytes.len() as u64,
        })
    }

    /// Truncate a table's log to `len` bytes — dropping a torn tail so
    /// later appends extend a valid record prefix instead of hiding behind
    /// garbage. Any buffered writer for the table is discarded first.
    pub fn truncate_table(&mut self, table: &str, len: u64) -> DiskResult<()> {
        if let Some(w) = self.writers.remove(table) {
            let _ = w.into_parts();
        }
        let path = self.table_path(table)?;
        let file = match OpenOptions::new().write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && len == 0 => return Ok(()),
            Err(e) => return Err(DiskError::io(&path, e)),
        };
        file.set_len(len).map_err(|e| DiskError::io(&path, e))?;
        file.sync_data().map_err(|e| DiskError::io(&path, e))?;
        Ok(())
    }

    /// Atomically replace a table's log with exactly `rows` (expiry: the
    /// oldest blocks were dropped from memory, so the on-disk log must
    /// shrink to the surviving rows to preserve the memory↔disk prefix
    /// correspondence). Durable on return (tmp file + fsync + rename).
    pub fn rewrite_table(&mut self, table: &str, rows: &[Row]) -> DiskResult<()> {
        if let Some(w) = self.writers.remove(table) {
            let _ = w.into_parts();
        }
        let path = self.table_path(table)?;
        let tmp = path.with_extension("rows.tmp");
        let mut buf = Vec::new();
        for row in rows {
            write_record(row, &mut buf);
        }
        let mut file = File::create(&tmp).map_err(|e| DiskError::io(&tmp, e))?;
        file.write_all(&buf).map_err(|e| DiskError::io(&tmp, e))?;
        file.sync_data().map_err(|e| DiskError::io(&tmp, e))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| DiskError::io(&path, e))?;
        Ok(())
    }

    /// Delete a table's log (expiry of an entire table).
    pub fn remove_table(&mut self, table: &str) -> DiskResult<bool> {
        self.writers.remove(table);
        let path = self.table_path(table)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(DiskError::io(&path, e)),
        }
    }

    /// Total size of the backup on disk.
    pub fn size_bytes(&self) -> DiskResult<u64> {
        let mut total = 0;
        for table in self.tables()? {
            let path = self.table_path(&table)?;
            total += fs::metadata(&path)
                .map_err(|e| DiskError::io(&path, e))?
                .len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scuba_disk_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::at(i).with("v", i * 2).with("s", format!("r{i}")))
            .collect()
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let dir = tmpdir("rt");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("events", &rows(100)).unwrap();
        b.append("metrics", &rows(10)).unwrap();
        assert!(b.dirty_bytes() > 0);
        let synced = b.sync().unwrap();
        assert!(synced > 0);
        assert_eq!(b.dirty_bytes(), 0);

        let (map, stats) = b.recover(999, None).unwrap();
        assert_eq!(stats.tables, 2);
        assert_eq!(stats.rows, 110);
        assert_eq!(stats.torn_tails, 0);
        assert_eq!(map.get("events").unwrap().row_count(), 100);
        assert_eq!(map.get("metrics").unwrap().row_count(), 10);
        // Spot-check data integrity through the columnar rebuild.
        let block = &map.get("events").unwrap().blocks()[0];
        assert_eq!(block.cell(5, "v").unwrap(), Value::Int(10));
        assert_eq!(block.cell(5, "s").unwrap(), Value::from("r5"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_accumulate_across_handles() {
        let dir = tmpdir("acc");
        {
            let mut b = DiskBackup::open(&dir).unwrap();
            b.append("t", &rows(5)).unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = DiskBackup::open(&dir).unwrap();
            b.append("t", &rows(5)).unwrap();
            b.sync().unwrap();
        }
        let b = DiskBackup::open(&dir).unwrap();
        let (map, stats) = b.recover(0, None).unwrap();
        assert_eq!(stats.rows, 10);
        assert_eq!(map.get("t").unwrap().row_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let dir = tmpdir("torn");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(50)).unwrap();
        b.sync().unwrap();
        // Simulate a crash mid-append: chop bytes off the end.
        let path = dir.join("t.rows");
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();

        let (map, stats) = b.recover(0, None).unwrap();
        assert_eq!(stats.torn_tails, 1);
        assert_eq!(map.get("t").unwrap().row_count(), 49); // lost exactly the torn row
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exotic_table_names_round_trip() {
        let dir = tmpdir("names");
        let mut b = DiskBackup::open(&dir).unwrap();
        let weird = "ads.revenue/us-east (v2)";
        b.append(weird, &rows(3)).unwrap();
        b.sync().unwrap();
        assert_eq!(b.tables().unwrap(), vec![weird.to_owned()]);
        let (map, _) = b.recover(0, None).unwrap();
        assert_eq!(map.get(weird).unwrap().row_count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_table_names_rejected() {
        let dir = tmpdir("bad");
        let mut b = DiskBackup::open(&dir).unwrap();
        assert!(b.append("", &rows(1)).is_err());
        assert!(b.append(&"x".repeat(500), &rows(1)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_table_deletes_log() {
        let dir = tmpdir("rm");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("gone", &rows(2)).unwrap();
        b.sync().unwrap();
        assert!(b.remove_table("gone").unwrap());
        assert!(!b.remove_table("gone").unwrap());
        assert!(b.tables().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_of_empty_backup() {
        let dir = tmpdir("empty");
        let b = DiskBackup::open(&dir).unwrap();
        let (map, stats) = b.recover(0, None).unwrap();
        assert!(map.is_empty());
        assert_eq!(stats.rows, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coverage_counts_valid_prefix_and_flags_torn_tail() {
        let dir = tmpdir("cov");
        let mut b = DiskBackup::open(&dir).unwrap();
        // Missing file: zero coverage, no error.
        assert_eq!(b.coverage("t", None).unwrap(), TableCoverage::default());
        b.append("t", &rows(50)).unwrap();
        b.sync().unwrap();
        let clean = b.coverage("t", None).unwrap();
        assert_eq!(clean.rows, 50);
        assert_eq!(clean.valid_len, clean.file_len);
        assert_eq!(clean.scanned_bytes, clean.file_len);

        // A trusted hint at the synced boundary skips the whole scan.
        let hinted = b.coverage("t", Some((50, clean.valid_len))).unwrap();
        assert_eq!(hinted.rows, 50);
        assert_eq!(hinted.valid_len, clean.valid_len);
        assert_eq!(hinted.scanned_bytes, 0);
        // A hint past EOF is ignored: full scan, same answer.
        let bogus = b.coverage("t", Some((99, clean.file_len + 1000))).unwrap();
        assert_eq!(bogus.rows, 50);
        assert_eq!(bogus.scanned_bytes, clean.file_len);

        // Tear the tail: coverage reports the valid prefix and the gap.
        let path = dir.join("t.rows");
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let torn = b.coverage("t", None).unwrap();
        assert_eq!(torn.rows, 49);
        assert!(torn.valid_len < torn.file_len);
        // Hint at a mid-file record boundary: suffix scan agrees.
        let mid = b.coverage("t", Some((49, torn.valid_len))).unwrap();
        assert_eq!(mid.rows, 49);
        assert_eq!(mid.valid_len, torn.valid_len);
        assert!(mid.scanned_bytes < torn.file_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_table_repairs_torn_tail_for_later_appends() {
        let dir = tmpdir("trunc");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(20)).unwrap();
        b.sync().unwrap();
        // Garbage after the valid records: appends would hide behind it.
        let path = dir.join("t.rows");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 13]).unwrap();
        drop(f);
        let cov = b.coverage("t", None).unwrap();
        assert_eq!(cov.rows, 20);
        assert!(cov.valid_len < cov.file_len);
        b.truncate_table("t", cov.valid_len).unwrap();
        b.append("t", &rows(5)).unwrap();
        b.sync().unwrap();
        let (map, stats) = b.recover(0, None).unwrap();
        assert_eq!(stats.torn_tails, 0);
        assert_eq!(map.get("t").unwrap().row_count(), 25);
        // Truncating a missing table to zero is a no-op, not an error.
        b.truncate_table("absent", 0).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_table_replaces_log_atomically() {
        let dir = tmpdir("rw");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(100)).unwrap();
        b.sync().unwrap();
        // Expiry dropped the first 60 rows: the log must shrink to match.
        let keep = rows(100).split_off(60);
        b.rewrite_table("t", &keep).unwrap();
        let cov = b.coverage("t", None).unwrap();
        assert_eq!(cov.rows, 40);
        let (map, _) = b.recover(0, None).unwrap();
        assert_eq!(map.get("t").unwrap().row_count(), 40);
        // Appends after a rewrite extend the new log.
        b.append("t", &rows(3)).unwrap();
        b.sync().unwrap();
        assert_eq!(b.coverage("t", None).unwrap().rows, 43);
        // Rewriting to empty leaves a valid empty log.
        b.rewrite_table("t", &[]).unwrap();
        assert_eq!(b.coverage("t", None).unwrap().rows, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_accounting() {
        let dir = tmpdir("size");
        let mut b = DiskBackup::open(&dir).unwrap();
        b.append("t", &rows(100)).unwrap();
        b.sync().unwrap();
        assert!(b.size_bytes().unwrap() > 1000);
        fs::remove_dir_all(&dir).unwrap();
    }
}
