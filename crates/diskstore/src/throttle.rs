//! Bandwidth throttling for paper-scale emulation.
//!
//! The paper's numbers come from spinning disks (~100 MB/s per disk) and
//! memory (GB/s). Experiments that want realistic *elapsed-time ratios*
//! at laptop scale wrap their byte movement in a [`Throttle`], which
//! sleeps just enough to hold a configured bytes/second rate. The cluster
//! simulator instead uses the same rates analytically (no sleeping); this
//! type is for the real-execution experiments and demos.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Paces byte consumption at a fixed rate.
#[derive(Debug)]
pub struct Throttle {
    bytes_per_sec: f64,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    started: Option<Instant>,
    consumed: u64,
}

impl Throttle {
    /// A throttle allowing `bytes_per_sec` of traffic.
    pub fn new(bytes_per_sec: u64) -> Throttle {
        assert!(bytes_per_sec > 0, "rate must be positive");
        Throttle {
            bytes_per_sec: bytes_per_sec as f64,
            state: Mutex::new(State {
                started: None,
                consumed: 0,
            }),
        }
    }

    /// The configured rate.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec as u64
    }

    /// Record `bytes` of traffic, sleeping if we are ahead of the rate.
    pub fn consume(&self, bytes: u64) {
        let sleep_needed = {
            let mut s = self.state.lock().expect("throttle poisoned");
            let started = *s.started.get_or_insert_with(Instant::now);
            s.consumed += bytes;
            let due = Duration::from_secs_f64(s.consumed as f64 / self.bytes_per_sec);
            let elapsed = started.elapsed();
            due.checked_sub(elapsed)
        };
        if let Some(d) = sleep_needed {
            std::thread::sleep(d);
        }
    }

    /// Simulated duration to move `bytes` at this rate, without sleeping
    /// (used by analytic experiments).
    pub fn duration_for(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Total bytes consumed so far.
    pub fn consumed(&self) -> u64 {
        self.state.lock().expect("throttle poisoned").consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_consumption() {
        // 1 MB/s; consuming 200 KB should take ~200 ms.
        let t = Throttle::new(1_000_000);
        let start = Instant::now();
        for _ in 0..10 {
            t.consume(20_000);
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(800), "{elapsed:?}");
        assert_eq!(t.consumed(), 200_000);
    }

    #[test]
    fn duration_for_is_analytic() {
        let t = Throttle::new(100 << 20); // 100 MiB/s "disk"
        let d = t.duration_for(120 << 30); // 120 GiB, the paper's per-machine data
                                           // 120 GiB / 100 MiB/s = ~20.5 minutes — the paper says 20-25 min.
        assert!(
            d >= Duration::from_secs(19 * 60) && d <= Duration::from_secs(26 * 60),
            "{d:?}"
        );
    }

    #[test]
    fn fast_rate_barely_sleeps() {
        let t = Throttle::new(u64::MAX / 2);
        let start = Instant::now();
        t.consume(10_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        Throttle::new(0);
    }
}
