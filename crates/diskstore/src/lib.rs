//! Disk backup substrate for the Scuba fast-restart reproduction.
//!
//! "Scuba stores backups of all incoming data to disk, so it is always
//! possible to recover from disk, even in the case of a software or
//! hardware crash." (§4) Disk recovery is the slow path the paper is
//! beating: "Reading about 120 GB of data from disk takes 20-25 minutes;
//! reading that data in its disk format and translating it to its
//! in-memory format takes 2.5-3 hours" (§1) — i.e. the dominant cost is
//! *format translation*, not I/O.
//!
//! Two on-disk formats are implemented:
//!
//! * [`rowformat`] + [`backup::DiskBackup`] — the production path: a
//!   row-oriented append-only log per table. Recovery must parse every
//!   row and rebuild the columnar row blocks through the normal builder,
//!   which is exactly the translation cost the paper describes. Torn
//!   tails (crash mid-append) are tolerated by truncating at the first
//!   bad record: "losing a tiny amount of data ... is acceptable and it
//!   simplifies recovery greatly" (§4.1).
//! * [`fastformat`] — the §6 future-work format: "We are planning to use
//!   the shared memory format described in this paper as the disk format,
//!   instead. We expect that the much simpler translation to heap memory
//!   format will speed up disk recovery significantly." Row block images
//!   are written verbatim; recovery is read + validate. Experiment E10
//!   measures the difference.
//!
//! [`throttle::Throttle`] emulates a paper-scale disk (or memory) device
//! for experiments that need real elapsed time at laptop scale.

pub mod backup;
pub mod error;
pub mod fastformat;
pub mod rowformat;
pub mod throttle;

pub use backup::{DiskBackup, RecoveryStats, TableCoverage};
pub use error::{DiskError, DiskResult};
pub use fastformat::FastBackup;
pub use throttle::Throttle;
