//! Errors from the disk backup layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Result alias for disk operations.
pub type DiskResult<T> = std::result::Result<T, DiskError>;

/// A disk backup/recovery failure.
#[derive(Debug)]
pub enum DiskError {
    /// An I/O operation failed.
    Io { path: PathBuf, source: io::Error },
    /// A record failed to parse (beyond a tolerable torn tail).
    Format {
        path: PathBuf,
        offset: u64,
        reason: String,
    },
    /// Column-store decode error while translating.
    Store(scuba_columnstore::Error),
    /// Table name cannot be mapped to a file name.
    BadTableName(String),
}

impl DiskError {
    pub(crate) fn io(path: &std::path::Path, source: io::Error) -> DiskError {
        DiskError::Io {
            path: path.to_owned(),
            source,
        }
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            DiskError::Format {
                path,
                offset,
                reason,
            } => write!(
                f,
                "bad record in {} at offset {offset}: {reason}",
                path.display()
            ),
            DiskError::Store(e) => write!(f, "column store error during recovery: {e}"),
            DiskError::BadTableName(name) => write!(f, "table name {name:?} is not storable"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io { source, .. } => Some(source),
            DiskError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scuba_columnstore::Error> for DiskError {
    fn from(e: scuba_columnstore::Error) -> Self {
        DiskError::Store(e)
    }
}
