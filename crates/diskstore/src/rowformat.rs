//! The row-oriented on-disk record format.
//!
//! Deliberately row-major: Scuba's disk backup logs incoming row batches,
//! and recovery has to parse every record and push it back through the
//! columnar builder — that *translation* is what makes disk recovery take
//! "2.5-3 hours" against "20-25 minutes" of raw reading (§1).
//!
//! # Record layout
//!
//! ```text
//! u32 record length (bytes after this field)
//! u32 crc32 of the payload
//! payload:
//!   i64 time
//!   u16 column count
//!   per column: u16 name length | name bytes | u8 type code | value
//!     value: Int64/Double = 8 bytes LE; Str = u32 length + bytes
//! ```

use scuba_columnstore::checksum::crc32;
use scuba_columnstore::{ColumnType, Row, Value};

/// Maximum sane record size; larger length prefixes are treated as
/// corruption (a torn length field could otherwise ask for gigabytes).
pub const MAX_RECORD: usize = 64 << 20;

/// Serialize one row as a length-prefixed, checksummed record.
pub fn write_record(row: &Row, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(row.heap_size() + 16);
    payload.extend_from_slice(&row.time().to_le_bytes());
    payload.extend_from_slice(&(row.num_columns() as u16).to_le_bytes());
    for (name, value) in row.columns() {
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        match value {
            Value::Int(v) => {
                payload.push(ColumnType::Int64.code());
                payload.extend_from_slice(&v.to_le_bytes());
            }
            Value::Double(v) => {
                payload.push(ColumnType::Double.code());
                payload.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                payload.push(ColumnType::Str.code());
                payload.extend_from_slice(&(s.len() as u32).to_le_bytes());
                payload.extend_from_slice(s.as_bytes());
            }
            Value::StrSet(items) => {
                payload.push(ColumnType::StrSet.code());
                payload.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    payload.extend_from_slice(&(item.len() as u32).to_le_bytes());
                    payload.extend_from_slice(item.as_bytes());
                }
            }
            Value::Null => unreachable!("rows never store nulls"),
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    // Failpoint producing a crash-torn record: full header, truncated
    // payload — what a power cut mid-append leaves in the log. Recovery
    // must detect it by CRC and drop exactly this record.
    if let Some(fault) = scuba_faults::check("diskstore::rowformat::record") {
        let keep = match fault {
            scuba_faults::Fault::ShortWrite(n) => n.min(payload.len()),
            scuba_faults::Fault::Error => 0,
        };
        out.extend_from_slice(&payload[..keep]);
        return;
    }
    out.extend_from_slice(&payload);
}

/// Outcome of reading one record.
#[derive(Debug, PartialEq)]
pub enum ReadOutcome {
    /// A full record parsed; cursor advanced past it.
    Record(Row),
    /// Clean end of input (no bytes left).
    End,
    /// Truncated or corrupt data at the tail; carries the reason. Callers
    /// treat this as a crash-torn tail and stop (§4.1).
    Torn(String),
}

/// Read one record from `buf` at `*pos`, advancing `*pos` on success.
pub fn read_record(buf: &[u8], pos: &mut usize) -> ReadOutcome {
    let p = *pos;
    if p == buf.len() {
        return ReadOutcome::End;
    }
    if p + 8 > buf.len() {
        return ReadOutcome::Torn("record header truncated".to_owned());
    }
    let len = u32::from_le_bytes(buf[p..p + 4].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(buf[p + 4..p + 8].try_into().unwrap());
    if len > MAX_RECORD {
        return ReadOutcome::Torn(format!("record length {len} exceeds cap"));
    }
    if p + 8 + len > buf.len() {
        return ReadOutcome::Torn("record payload truncated".to_owned());
    }
    let payload = &buf[p + 8..p + 8 + len];
    if crc32(payload) != stored_crc {
        return ReadOutcome::Torn("record checksum mismatch".to_owned());
    }
    match parse_payload(payload) {
        Ok(row) => {
            *pos = p + 8 + len;
            ReadOutcome::Record(row)
        }
        Err(reason) => ReadOutcome::Torn(reason),
    }
}

/// Outcome of skipping one record without materializing it.
#[derive(Debug, PartialEq)]
pub enum SkipOutcome {
    /// A full, valid record was skipped; cursor advanced past it.
    Skipped,
    /// Clean end of input.
    End,
    /// Truncated or corrupt data at the tail.
    Torn,
}

/// Validate one record at `*pos` and advance past it, without allocating a
/// [`Row`]. Accepts and rejects *exactly* the same byte streams as
/// [`read_record`] — recovery-time coverage scans use this to count the
/// valid record prefix of a backup file cheaply (no per-row `String`
/// allocations), and the count must agree with what a later
/// [`read_record`] pass would recover.
pub fn skip_record(buf: &[u8], pos: &mut usize) -> SkipOutcome {
    let p = *pos;
    if p == buf.len() {
        return SkipOutcome::End;
    }
    if p + 8 > buf.len() {
        return SkipOutcome::Torn;
    }
    let len = u32::from_le_bytes(buf[p..p + 4].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(buf[p + 4..p + 8].try_into().unwrap());
    if len > MAX_RECORD {
        return SkipOutcome::Torn;
    }
    if p + 8 + len > buf.len() {
        return SkipOutcome::Torn;
    }
    let payload = &buf[p + 8..p + 8 + len];
    if crc32(payload) != stored_crc {
        return SkipOutcome::Torn;
    }
    if validate_payload(payload).is_err() {
        return SkipOutcome::Torn;
    }
    *pos = p + 8 + len;
    SkipOutcome::Skipped
}

/// Structural walk of a record payload with no allocation. Must apply the
/// identical checks, in the identical order, as [`parse_payload`].
fn validate_payload(payload: &[u8]) -> Result<(), ()> {
    let take = |p: &mut usize, n: usize| -> Result<&[u8], ()> {
        if *p + n > payload.len() {
            return Err(());
        }
        let s = &payload[*p..*p + n];
        *p += n;
        Ok(s)
    };
    let mut p = 0usize;
    take(&mut p, 8)?; // time
    let ncols = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
    for _ in 0..ncols {
        let name_len = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
        std::str::from_utf8(take(&mut p, name_len)?).map_err(|_| ())?;
        let code = take(&mut p, 1)?[0];
        let ty = ColumnType::from_code(code).ok_or(())?;
        match ty {
            ColumnType::Int64 | ColumnType::Double => {
                take(&mut p, 8)?;
            }
            ColumnType::Str => {
                let len = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                std::str::from_utf8(take(&mut p, len)?).map_err(|_| ())?;
            }
            ColumnType::StrSet => {
                let count = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                if count > payload.len() {
                    return Err(());
                }
                for _ in 0..count {
                    let len = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                    std::str::from_utf8(take(&mut p, len)?).map_err(|_| ())?;
                }
            }
        }
    }
    if p != payload.len() {
        return Err(());
    }
    Ok(())
}

fn parse_payload(payload: &[u8]) -> Result<Row, String> {
    let take = |p: &mut usize, n: usize| -> Result<&[u8], String> {
        if *p + n > payload.len() {
            return Err("payload truncated".to_owned());
        }
        let s = &payload[*p..*p + n];
        *p += n;
        Ok(s)
    };
    let mut p = 0usize;
    let time = i64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap());
    let ncols = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
    let mut row = Row::at(time);
    for _ in 0..ncols {
        let name_len = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(&mut p, name_len)?)
            .map_err(|_| "column name is not UTF-8".to_owned())?
            .to_owned();
        let code = take(&mut p, 1)?[0];
        let ty = ColumnType::from_code(code).ok_or_else(|| format!("bad type code {code}"))?;
        let value = match ty {
            ColumnType::Int64 => {
                Value::Int(i64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap()))
            }
            ColumnType::Double => {
                Value::Double(f64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap()))
            }
            ColumnType::Str => {
                let len = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                let s = std::str::from_utf8(take(&mut p, len)?)
                    .map_err(|_| "string value is not UTF-8".to_owned())?;
                Value::Str(s.to_owned())
            }
            ColumnType::StrSet => {
                let count = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                if count > payload.len() {
                    return Err("set element count exceeds payload".to_owned());
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                    let s = std::str::from_utf8(take(&mut p, len)?)
                        .map_err(|_| "set element is not UTF-8".to_owned())?;
                    items.push(s.to_owned());
                }
                Value::set(items)
            }
        };
        row.set(&name, value);
    }
    if p != payload.len() {
        return Err("trailing bytes in record payload".to_owned());
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        Row::at(1_700_000_123)
            .with("endpoint", "/api/feed")
            .with("status", 200i64)
            .with("latency_ms", 12.75f64)
    }

    #[test]
    fn record_round_trip() {
        let row = sample_row();
        let mut buf = Vec::new();
        write_record(&row, &mut buf);
        let mut pos = 0;
        match read_record(&buf, &mut pos) {
            ReadOutcome::Record(back) => assert_eq!(back, row),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(pos, buf.len());
        assert_eq!(read_record(&buf, &mut pos), ReadOutcome::End);
    }

    #[test]
    fn many_records_stream() {
        let mut buf = Vec::new();
        let rows: Vec<Row> = (0..200)
            .map(|i| Row::at(i).with("n", i * 3).with("s", format!("v{i}")))
            .collect();
        for r in &rows {
            write_record(r, &mut buf);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        loop {
            match read_record(&buf, &mut pos) {
                ReadOutcome::Record(r) => back.push(r),
                ReadOutcome::End => break,
                ReadOutcome::Torn(r) => panic!("torn: {r}"),
            }
        }
        assert_eq!(back, rows);
    }

    #[test]
    fn torn_tail_detected_not_panicking() {
        let mut buf = Vec::new();
        write_record(&sample_row(), &mut buf);
        let full = buf.len();
        // Every truncation point inside the record must yield Torn (or End
        // at exactly 0... no: 0 length means header truncated unless empty).
        for cut in 1..full {
            let mut pos = 0;
            match read_record(&buf[..cut], &mut pos) {
                ReadOutcome::Torn(_) => {}
                other => panic!("cut={cut}: expected Torn, got {other:?}"),
            }
            assert_eq!(pos, 0, "cursor must not advance on torn record");
        }
    }

    #[test]
    fn bit_flip_detected_by_crc() {
        let mut buf = Vec::new();
        write_record(&sample_row(), &mut buf);
        for i in 8..buf.len() {
            let mut copy = buf.clone();
            copy[i] ^= 0x01;
            let mut pos = 0;
            assert!(
                matches!(read_record(&copy, &mut pos), ReadOutcome::Torn(_)),
                "flip at {i} undetected"
            );
        }
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0x7F]; // ~2 GB length
        buf.extend_from_slice(&[0u8; 12]);
        let mut pos = 0;
        assert!(matches!(read_record(&buf, &mut pos), ReadOutcome::Torn(_)));
    }

    /// skip_record must agree with read_record on every input this suite
    /// can construct: valid streams, every truncation cut, every bit flip.
    #[test]
    fn skip_agrees_with_read_everywhere() {
        let mut buf = Vec::new();
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                Row::at(i)
                    .with("n", i * 3)
                    .with("s", format!("v{i}"))
                    .with("tags", Value::set(vec![format!("a{i}"), "b".to_owned()]))
            })
            .collect();
        for r in &rows {
            write_record(r, &mut buf);
        }
        // Valid stream: same record boundaries, same count.
        let (mut rp, mut sp) = (0usize, 0usize);
        let mut skipped = 0;
        loop {
            let r = read_record(&buf, &mut rp);
            let s = skip_record(&buf, &mut sp);
            match (&r, &s) {
                (ReadOutcome::Record(_), SkipOutcome::Skipped) => skipped += 1,
                (ReadOutcome::End, SkipOutcome::End) => break,
                other => panic!("diverged after {skipped} records: {other:?}"),
            }
            assert_eq!(rp, sp, "cursor divergence after record {skipped}");
        }
        assert_eq!(skipped, rows.len());
        // Every truncation cut and every bit flip must tear identically.
        for cut in 0..buf.len() {
            let (mut rp, mut sp) = (0usize, 0usize);
            loop {
                let r = read_record(&buf[..cut], &mut rp);
                let s = skip_record(&buf[..cut], &mut sp);
                let same = matches!(
                    (&r, &s),
                    (ReadOutcome::Record(_), SkipOutcome::Skipped)
                        | (ReadOutcome::End, SkipOutcome::End)
                        | (ReadOutcome::Torn(_), SkipOutcome::Torn)
                );
                assert!(same, "cut={cut}: read={r:?} skip={s:?}");
                assert_eq!(rp, sp, "cut={cut}: cursor divergence");
                if !matches!(r, ReadOutcome::Record(_)) {
                    break;
                }
            }
        }
        for i in (0..buf.len()).step_by(7) {
            let mut copy = buf.clone();
            copy[i] ^= 0x10;
            let (mut rp, mut sp) = (0usize, 0usize);
            loop {
                let r = read_record(&copy, &mut rp);
                let s = skip_record(&copy, &mut sp);
                let same = matches!(
                    (&r, &s),
                    (ReadOutcome::Record(_), SkipOutcome::Skipped)
                        | (ReadOutcome::End, SkipOutcome::End)
                        | (ReadOutcome::Torn(_), SkipOutcome::Torn)
                );
                assert!(same, "flip@{i}: read={r:?} skip={s:?}");
                assert_eq!(rp, sp, "flip@{i}: cursor divergence");
                if !matches!(r, ReadOutcome::Record(_)) {
                    break;
                }
            }
        }
    }

    #[test]
    fn empty_row_round_trips() {
        let row = Row::at(5);
        let mut buf = Vec::new();
        write_record(&row, &mut buf);
        let mut pos = 0;
        match read_record(&buf, &mut pos) {
            ReadOutcome::Record(back) => {
                assert_eq!(back.time(), 5);
                assert_eq!(back.num_columns(), 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
