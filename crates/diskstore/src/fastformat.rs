//! The §6 future-work disk format: row block images on disk.
//!
//! "One large overhead in Scuba's disk recovery is translating from the
//! disk format to the heap memory format. ... We are planning to use the
//! shared memory format described in this paper as the disk format,
//! instead. We expect that the much simpler translation to heap memory
//! format will speed up disk recovery significantly."
//!
//! A [`FastBackup`] stores each table as a stream of serialized
//! [`RowBlock`] images — the same bytes the shared-memory path copies —
//! so recovery is read + checksum-validate + adopt, with no row-by-row
//! rebuild. Experiment E10 compares this against the row format.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use scuba_columnstore::{LeafMap, RowBlock, Table};

use crate::backup::RecoveryStats;
use crate::error::{DiskError, DiskResult};
use crate::throttle::Throttle;

/// File extension for block-image table files.
const BLOCKS_EXT: &str = "blocks";

/// A leaf backup in the fast (shm-image) format.
#[derive(Debug)]
pub struct FastBackup {
    root: PathBuf,
}

fn stem(table: &str) -> DiskResult<String> {
    if table.is_empty()
        || table.len() > 200
        || !table
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(DiskError::BadTableName(table.to_owned()));
    }
    Ok(table.to_owned())
}

impl FastBackup {
    /// Open (creating if needed) the backup directory.
    pub fn open(root: impl Into<PathBuf>) -> DiskResult<FastBackup> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| DiskError::io(&root, e))?;
        Ok(FastBackup { root })
    }

    /// The backup directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, table: &str) -> DiskResult<PathBuf> {
        Ok(self.root.join(format!("{}.{BLOCKS_EXT}", stem(table)?)))
    }

    /// Write a table's sealed blocks as one image file (atomic replace via
    /// a temp file so readers never see a half-written file).
    pub fn write_table(&self, table: &Table) -> DiskResult<u64> {
        let path = self.path(table.name())?;
        let tmp = path.with_extension("tmp");
        let mut buf = Vec::with_capacity(table.encoded_bytes() + 64);
        for block in table.blocks() {
            block.serialize(&mut buf);
        }
        let mut f = File::create(&tmp).map_err(|e| DiskError::io(&tmp, e))?;
        f.write_all(&buf).map_err(|e| DiskError::io(&tmp, e))?;
        f.sync_data().map_err(|e| DiskError::io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| DiskError::io(&path, e))?;
        Ok(buf.len() as u64)
    }

    /// Tables present on disk.
    pub fn tables(&self) -> DiskResult<Vec<String>> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| DiskError::io(&self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| DiskError::io(&self.root, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(BLOCKS_EXT) {
                if let Some(s) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(s.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Recover every table by adopting block images directly — the cheap
    /// translation the paper anticipates. Read and "translate" (validate +
    /// adopt) phases are timed separately for the E10 comparison.
    pub fn recover(
        &self,
        now: i64,
        throttle: Option<&Throttle>,
    ) -> DiskResult<(LeafMap, RecoveryStats)> {
        let mut map = LeafMap::new();
        let mut stats = RecoveryStats::default();
        for table in self.tables()? {
            let path = self.path(&table)?;

            let read_start = Instant::now();
            let mut bytes = Vec::new();
            File::open(&path)
                .map_err(|e| DiskError::io(&path, e))?
                .read_to_end(&mut bytes)
                .map_err(|e| DiskError::io(&path, e))?;
            if let Some(t) = throttle {
                t.consume(bytes.len() as u64);
            }
            stats.bytes_read += bytes.len() as u64;
            stats.read_duration += read_start.elapsed();

            let translate_start = Instant::now();
            let mut blocks = Vec::new();
            let mut pos = 0usize;
            while pos < bytes.len() {
                let (block, next) = RowBlock::deserialize(&bytes, pos).map_err(DiskError::Store)?;
                stats.rows += block.row_count() as u64;
                blocks.push(Arc::new(block));
                pos = next;
            }
            stats.translate_duration += translate_start.elapsed();
            map.insert(Table::from_blocks(&table, blocks, now));
            stats.tables += 1;
        }
        Ok((map, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::{Row, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scuba_fast_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table(name: &str, rows: i64) -> Table {
        let mut t = Table::new(name, 0);
        for i in 0..rows {
            t.append(&Row::at(i).with("v", i).with("s", format!("x{}", i % 9)), 0)
                .unwrap();
        }
        t.seal(0).unwrap();
        t
    }

    #[test]
    fn write_recover_round_trip() {
        let dir = tmpdir("rt");
        let b = FastBackup::open(&dir).unwrap();
        let t = sample_table("events", 500);
        let written = b.write_table(&t).unwrap();
        assert!(written > 0);

        let (map, stats) = b.recover(1, None).unwrap();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.rows, 500);
        let rt = map.get("events").unwrap();
        assert_eq!(rt.row_count(), 500);
        assert_eq!(rt.blocks()[0].cell(7, "v").unwrap(), Value::Int(7));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmpdir("rw");
        let b = FastBackup::open(&dir).unwrap();
        b.write_table(&sample_table("t", 10)).unwrap();
        b.write_table(&sample_table("t", 20)).unwrap();
        let (map, _) = b.recover(0, None).unwrap();
        assert_eq!(map.get("t").unwrap().row_count(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_image_is_an_error_not_a_panic() {
        let dir = tmpdir("corrupt");
        let b = FastBackup::open(&dir).unwrap();
        b.write_table(&sample_table("t", 50)).unwrap();
        let path = dir.join("t.blocks");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(b.recover(0, None).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_tables_sorted() {
        let dir = tmpdir("multi");
        let b = FastBackup::open(&dir).unwrap();
        b.write_table(&sample_table("zz", 1)).unwrap();
        b.write_table(&sample_table("aa", 1)).unwrap();
        assert_eq!(b.tables().unwrap(), vec!["aa", "zz"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_names_for_fast_format() {
        let dir = tmpdir("strict");
        let b = FastBackup::open(&dir).unwrap();
        assert!(b.write_table(&sample_table("ok_name", 1)).is_ok());
        let t = sample_table("ok", 1);
        let _ = t;
        assert!(matches!(
            b.path("has space"),
            Err(DiskError::BadTableName(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
