//! Property-based tests for the disk formats: arbitrary rows round-trip
//! through both formats, and arbitrary corruption/truncation is detected
//! (row format: torn-tail prefix recovery; fast format: hard error).

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

use scuba_columnstore::{Row, Table};
use scuba_diskstore::rowformat::{read_record, write_record, ReadOutcome};
use scuba_diskstore::{DiskBackup, FastBackup};

fn arb_row() -> impl Strategy<Value = Row> {
    (
        any::<i32>(),
        option::of(any::<i64>()),
        option::of("[a-zA-Z0-9 ,./-]{0,30}"),
        option::of(any::<f64>().prop_filter("no NaN", |v| !v.is_nan())),
        option::of(vec("[a-z]{0,5}", 0..4)),
    )
        .prop_map(|(t, i, s, d, set)| {
            let mut row = Row::at(t as i64);
            if let Some(i) = i {
                row.set("i", i);
            }
            if let Some(s) = s {
                row.set("s", s);
            }
            if let Some(d) = d {
                row.set("d", d);
            }
            if let Some(set) = set {
                row.set("tags", scuba_columnstore::Value::set(set));
            }
            row
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip(rows in vec(arb_row(), 0..80)) {
        let mut buf = Vec::new();
        for r in &rows {
            write_record(r, &mut buf);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        loop {
            match read_record(&buf, &mut pos) {
                ReadOutcome::Record(r) => back.push(r),
                ReadOutcome::End => break,
                ReadOutcome::Torn(reason) => return Err(TestCaseError::fail(reason)),
            }
        }
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn any_truncation_recovers_exact_prefix(rows in vec(arb_row(), 1..40), cut_seed in any::<usize>()) {
        // Record boundaries are known; a cut anywhere loses at most the
        // records at/after the cut and never corrupts earlier ones.
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for r in &rows {
            write_record(r, &mut buf);
            boundaries.push(buf.len());
        }
        let cut = cut_seed % buf.len();
        let complete_before_cut = boundaries.iter().filter(|&&b| b <= cut).count();

        let mut pos = 0;
        let mut recovered = Vec::new();
        while let ReadOutcome::Record(r) = read_record(&buf[..cut], &mut pos) {
            recovered.push(r);
        }
        prop_assert_eq!(recovered.len(), complete_before_cut);
        prop_assert_eq!(&recovered[..], &rows[..complete_before_cut]);
    }

    #[test]
    fn single_bit_flips_never_yield_wrong_rows(rows in vec(arb_row(), 1..20), pos_seed in any::<usize>(), bit in 0u8..8) {
        let mut buf = Vec::new();
        for r in &rows {
            write_record(r, &mut buf);
        }
        let flip_at = pos_seed % buf.len();
        buf[flip_at] ^= 1 << bit;

        let mut pos = 0;
        let mut recovered = Vec::new();
        while let ReadOutcome::Record(r) = read_record(&buf, &mut pos) {
            recovered.push(r);
        }
        // Every recovered row must be one of the originals, in order — the
        // flip may truncate the stream but never fabricate data. (A flip in
        // a length field can only merge/shift records, which the CRC over
        // the payload catches.)
        prop_assert!(recovered.len() <= rows.len());
        prop_assert_eq!(&recovered[..], &rows[..recovered.len()]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn disk_backup_round_trips(batches in vec(vec(arb_row(), 1..30), 1..4)) {
        let dir = std::env::temp_dir().join(format!(
            "scuba_dprop_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut backup = DiskBackup::open(&dir).unwrap();
        let mut all = Vec::new();
        for batch in &batches {
            backup.append("t", batch).unwrap();
            all.extend(batch.iter().cloned());
        }
        backup.sync().unwrap();
        let (map, stats) = backup.recover(0, None).unwrap();
        prop_assert_eq!(stats.rows as usize, all.len());
        let recovered: Vec<Row> = map
            .get("t")
            .unwrap()
            .blocks()
            .iter()
            .flat_map(|b| b.decode_rows().unwrap())
            .collect();
        prop_assert_eq!(recovered, all);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fast_format_round_trips(rows in vec(arb_row(), 1..120), seal_every in 1usize..40) {
        let dir = std::env::temp_dir().join(format!(
            "scuba_fprop_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("t", 0);
        for (i, r) in rows.iter().enumerate() {
            t.append(r, 0).unwrap();
            if (i + 1) % seal_every == 0 {
                t.seal(0).unwrap();
            }
        }
        t.seal(0).unwrap();
        let backup = FastBackup::open(&dir).unwrap();
        backup.write_table(&t).unwrap();
        let (map, stats) = backup.recover(0, None).unwrap();
        prop_assert_eq!(stats.rows as usize, rows.len());
        let recovered: Vec<Row> = map
            .get("t")
            .unwrap()
            .blocks()
            .iter()
            .flat_map(|b| b.decode_rows().unwrap())
            .collect();
        prop_assert_eq!(recovered, rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
