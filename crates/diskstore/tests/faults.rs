//! Failpoint-driven tests for the disk backup layer: partial writes, sync
//! failures, and torn records. Isolated in their own binary so armed sites
//! cannot wound unrelated unit tests; each test takes
//! `scuba_faults::exclusive()` to serialize with the others.

use std::path::PathBuf;

use scuba_columnstore::Row;
use scuba_diskstore::{DiskBackup, DiskError};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scuba_dfault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rows(range: std::ops::Range<i64>) -> Vec<Row> {
    range.map(|i| Row::at(i).with("v", i)).collect()
}

#[test]
fn short_append_leaves_recoverable_prefix() {
    let _x = scuba_faults::exclusive();
    scuba_faults::clear_all();
    let dir = tmpdir("short");
    let mut b = DiskBackup::open(&dir).unwrap();
    b.append("t", &rows(0..50)).unwrap();
    b.sync().unwrap();

    // The next batch is torn 100 bytes in: the write errors and only a
    // prefix reaches the log.
    {
        let _g = scuba_faults::guard("diskstore::append", "short=100").unwrap();
        let err = b.append("t", &rows(50..100)).unwrap_err();
        assert!(matches!(err, DiskError::Io { .. }), "{err}");
    }
    b.sync().unwrap();

    // Recovery keeps every pre-fault row, detects the torn tail, and drops
    // only wounded records.
    let (map, stats) = b.recover(0, None).unwrap();
    assert_eq!(stats.torn_tails, 1);
    let n = map.get("t").unwrap().row_count();
    assert!((50..100).contains(&n), "recovered {n} rows");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn append_error_keeps_log_intact() {
    let _x = scuba_faults::exclusive();
    scuba_faults::clear_all();
    let dir = tmpdir("err");
    let mut b = DiskBackup::open(&dir).unwrap();
    b.append("t", &rows(0..20)).unwrap();
    {
        let _g = scuba_faults::guard("diskstore::append", "error").unwrap();
        assert!(b.append("t", &rows(20..40)).is_err());
    }
    b.sync().unwrap();
    let (map, stats) = b.recover(0, None).unwrap();
    assert_eq!(stats.torn_tails, 0);
    assert_eq!(map.get("t").unwrap().row_count(), 20);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sync_failure_surfaces_and_retry_succeeds() {
    let _x = scuba_faults::exclusive();
    scuba_faults::clear_all();
    let dir = tmpdir("sync");
    let mut b = DiskBackup::open(&dir).unwrap();
    b.append("t", &rows(0..10)).unwrap();
    {
        let _g = scuba_faults::guard("diskstore::sync", "error").unwrap();
        assert!(b.sync().is_err());
    }
    assert!(b.dirty_bytes() > 0, "failed sync must not claim durability");
    let synced = b.sync().unwrap();
    assert!(synced > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_record_failpoint_is_detected_by_recovery() {
    let _x = scuba_faults::exclusive();
    scuba_faults::clear_all();
    let dir = tmpdir("torn");
    let mut b = DiskBackup::open(&dir).unwrap();
    b.append("t", &rows(0..30)).unwrap();
    // The 31st record written is torn 4 bytes into its payload.
    {
        let _g = scuba_faults::guard("diskstore::rowformat::record", "short=4@1").unwrap();
        b.append("t", &rows(30..31)).unwrap();
    }
    b.sync().unwrap();
    let (map, stats) = b.recover(0, None).unwrap();
    assert_eq!(stats.torn_tails, 1);
    assert_eq!(map.get("t").unwrap().row_count(), 30);
    std::fs::remove_dir_all(&dir).unwrap();
}
