//! Chaos soak for the restart protocol: repeated leaf rollovers, each with
//! one fault-injection site armed from a seeded script, asserting after
//! every wave that
//!
//! 1. the leaf comes back — a clean shared-memory restore or a
//!    [`RecoveryOutcome::Disk`] fallback, never a wedged process;
//! 2. recovered row counts and query results match everything that was
//!    durably synced before the wave (nothing synced is ever lost, nothing
//!    phantom appears);
//! 3. no shared-memory segments are left orphaned in `/dev/shm`.
//!
//! The soak drives a *real* leaf server — real segments, real disk logs —
//! through the same shutdown/restore cycle the rollover orchestrator uses,
//! standing on every ledge of the protocol: mid-chunk, between units, the
//! instant before and after each valid-bit edge, syscall failures, and
//! aborted lifecycle phases.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scuba_columnstore::Row;
use scuba_leaf::{LeafConfig, LeafPhase, LeafServer, RestoreMode, WriterCompat};
use scuba_query::Query;
use scuba_shmem::{ShmNamespace, ShmSegment};

use crate::dashboard::{Dashboard, DashboardFeed};

/// One scripted injection: the site to arm, its plan, and (for sites only
/// reachable on the disk path) a companion fault that steers the wave
/// there first.
struct Injection {
    site: &'static str,
    plan: &'static str,
    companion: Option<(&'static str, &'static str)>,
}

/// The injection script the seeded RNG draws from. Every ledge of the
/// protocol is represented; `error@1` fires on the first hit of the site
/// after arming, so each wave wounds exactly one step.
const INJECTIONS: &[Injection] = &[
    Injection {
        site: "shmem::segment::create",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::open",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::resize",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::sync",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::punch_hole",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::metadata::commit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::chunk",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::chunk",
        plan: "short=4@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::unit",
        plan: "error@2",
        companion: None,
    },
    Injection {
        site: "restart::backup::commit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::chunk",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::before_invalidate",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::after_invalidate",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "diskstore::sync",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::preparing",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::copying",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::exit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::memory_recovery",
        plan: "error@1",
        companion: None,
    },
    Injection {
        // Kill-during-hydration: fires after a two-phase attach has
        // consumed the valid bit, so the supervisor's retry must land on
        // disk recovery with zero segment orphans. Unreachable (a clean
        // wave) when the wave rolled with the full-restore mode.
        site: "leaf::phase::hydrating",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::disk_recovery",
        plan: "error@1",
        companion: Some(("restart::backup::unit", "error@1")),
    },
];

/// One scripted crash-wave wound. `pre_crash` sites arm *before* the
/// wave's checkpoint + ingest (they wound the continuous checkpoint or
/// the WAL while serving); the rest arm right before the kill and wound
/// the recovery itself. Every one of them must produce a disk fallback
/// with exact durable fidelity — never a wedge, never a phantom row.
struct CrashInjection {
    site: &'static str,
    plan: &'static str,
    pre_crash: bool,
}

/// The crash-wave wound script (drawn for ~1 in 3 crash waves; the rest
/// crash clean and must take the fast path).
const CRASH_INJECTIONS: &[CrashInjection] = &[
    CrashInjection {
        // Checkpoint cycle dies inside the invalid window: image stays
        // invalid, crash goes to disk.
        site: "leaf::checkpoint::write",
        plan: "error@1",
        pre_crash: true,
    },
    CrashInjection {
        // WAL append fails mid-ingest: the path poisons itself (image
        // torn down) rather than pair an image with a holed log.
        site: "restart::wal::append",
        plan: "error@1",
        pre_crash: true,
    },
    CrashInjection {
        // WAL fsync fails at the sync barrier: same poisoning contract.
        site: "restart::wal::fsync",
        plan: "error@1",
        pre_crash: true,
    },
    CrashInjection {
        // Replay finds the log unreadable: condemn the memory recovery.
        site: "restart::wal::replay",
        plan: "error@1",
        pre_crash: false,
    },
    CrashInjection {
        // Torn restore copy out of the warm image.
        site: "restart::restore::chunk",
        plan: "error@1",
        pre_crash: false,
    },
    CrashInjection {
        // Checkpoint segment vanished before the restore could open it.
        site: "shmem::segment::open",
        plan: "error@1",
        pre_crash: false,
    },
];

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the wave script (same seed → same waves, same outcomes).
    pub seed: u64,
    /// Restart cycles to run.
    pub waves: usize,
    /// Rows ingested into the main table before each wave.
    pub rows_per_wave: usize,
    /// Shared-memory prefix (keeps parallel soaks apart).
    pub shm_prefix: String,
    /// Disk backup directory.
    pub disk_root: PathBuf,
    /// Copy-pipeline worker threads for the leaf under test (0 = auto).
    pub copy_threads: usize,
    /// When true, odd waves restart with [`RestoreMode::TwoPhase`]
    /// (attach + background hydration) and even waves with the classic
    /// full restore, so one soak stands faults on both paths.
    pub two_phase: bool,
    /// When true, the seeded script also varies the *writer*: each wave's
    /// outgoing leaf shuts down as the current binary, the pre-refactor v1
    /// binary, or an early-TLV v2 binary — so faults and both restore
    /// modes are stood on cross-version images, not just same-version
    /// ones.
    pub mixed_writers: bool,
    /// When true, the leaf runs with the continuous-checkpoint + WAL
    /// crash path enabled and *even* waves die by mid-ingest kill
    /// (checkpoint → more ingest → unsynced tail → `crash()`) instead of
    /// a planned rollover. A clean kill must come back through the warm
    /// image + WAL replay with every WAL'd row; a wounded one must fall
    /// back to disk with exactly the durable rows.
    pub crash_waves: bool,
}

/// Writer label drawn for a wave (stable across runs for a given seed).
const WRITERS: &[(WriterCompat, &str)] = &[
    (WriterCompat::Current, "current"),
    (WriterCompat::LegacyV1, "legacy-v1"),
    (WriterCompat::AgedV2, "aged-v2"),
];

/// What one wave did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveRecord {
    /// Wave index.
    pub wave: usize,
    /// The armed site.
    pub site: &'static str,
    /// Whether the site's trigger actually fired this wave.
    pub fired: bool,
    /// Whether the leaf came back via memory (shared-memory restore).
    pub memory: bool,
    /// Which writer format the outgoing leaf shut down with
    /// (`"current"` unless [`ChaosConfig::mixed_writers`] drew an old one).
    pub writer: &'static str,
    /// Whether this wave died by mid-ingest kill (crash wave) rather
    /// than a planned rollover.
    pub crash: bool,
}

/// Soak summary; the wave trace is fully deterministic for a given
/// [`ChaosConfig`] (the dashboard rows carry wall-clock timings).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Waves completed.
    pub waves: usize,
    /// Waves that came back via shared-memory restore.
    pub memory_recoveries: usize,
    /// Waves that came back via disk recovery.
    pub disk_recoveries: usize,
    /// Crash waves run (0 unless [`ChaosConfig::crash_waves`]).
    pub crash_waves: usize,
    /// Crash waves that recovered through the warm checkpoint image +
    /// WAL replay (the fast crash path).
    pub crash_fast_recoveries: usize,
    /// Crash waves that fell back to disk (wounded ones).
    pub crash_disk_fallbacks: usize,
    /// Trigger counts per site, over the whole soak.
    pub fired_by_site: BTreeMap<String, u64>,
    /// Rows held by the leaf after the final wave.
    pub final_rows: usize,
    /// Per-wave trace.
    pub records: Vec<WaveRecord>,
    /// Figure-8 style availability trace built from the live leaf
    /// metrics: one "down" and one "recovered" sample per wave.
    pub dashboard: Dashboard,
}

impl ChaosReport {
    /// Distinct sites whose trigger fired at least once.
    pub fn distinct_sites_fired(&self) -> usize {
        self.fired_by_site.len()
    }
}

fn err(wave: usize, what: &str, detail: impl std::fmt::Display) -> String {
    format!("wave {wave}: {what}: {detail}")
}

/// Run the soak. Returns an error string describing the first violated
/// invariant, if any. Holds the fault registry's test lock for the whole
/// run (the registry is process-global).
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let _x = scuba_faults::exclusive();
    // The soak drains the process-global span ring every wave (so its
    // span-loss invariant is meaningful); serialize with the other ring
    // consumers — the telemetry exporter tests do the same.
    let _obs = scuba_obs::exclusive();
    scuba_faults::clear_all();
    // Every restart now emits its phase timeline as spans. Widen the ring
    // for the soak and drain it each wave: with both in place, losing a
    // span (span_ring_dropped_total moving) is a real protocol bug.
    scuba_obs::set_span_capacity(8192);
    let spans_dropped_baseline = scuba_obs::counter_value("span_ring_dropped_total").unwrap_or(0);

    let mut leaf_cfg = LeafConfig::new(0, cfg.shm_prefix.clone(), cfg.disk_root.clone());
    leaf_cfg.copy_threads = cfg.copy_threads;
    leaf_cfg.checkpoint_enabled = cfg.crash_waves;
    let ns = ShmNamespace::new(&cfg.shm_prefix, 0).map_err(|e| e.to_string())?;
    let mut server = LeafServer::new(leaf_cfg.clone()).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Dashboard rows come straight from the leaf's published metrics.
    let mut feed = DashboardFeed::from_keys(vec![server.obs_key().to_owned()]);
    let started = Instant::now();

    let mut report = ChaosReport {
        waves: 0,
        memory_recoveries: 0,
        disk_recoveries: 0,
        crash_waves: 0,
        crash_fast_recoveries: 0,
        crash_disk_fallbacks: 0,
        fired_by_site: BTreeMap::new(),
        final_rows: 0,
        records: Vec::with_capacity(cfg.waves),
        dashboard: Dashboard::new(1),
    };
    // Rows made durable (synced) so far, per table. Nothing is ever added
    // while a fault is armed, so recovery must reproduce these exactly.
    let mut durable_data = 0usize;
    let mut durable_aux = 0usize;
    // The crash-wave tail table: ingested *after* the last sync, killed
    // before the next one, so at kill time its newest rows live only in
    // the WAL (and, once checkpointed, the image). A fast recovery
    // replays them AND reconciles them into the disk backup, so from the
    // next wave on they are disk-durable too. `tail_rows` is what the
    // previous wave's recovery held; `tail_next` keys new rows.
    let mut tail_rows = 0usize;
    let mut tail_next = 0usize;
    // Recoveries the leaf itself attributed to a warm checkpoint image.
    // Usually equal to the fast crash recoveries, but a wound can hit the
    // pre-recovery probe (e.g. `shmem::segment::open` fires on the probe's
    // metadata open), leaving a fast recovery unattributed — so the metric
    // invariant compares against the leaf's own flag, not the outcome.
    let mut warm_recoveries = 0usize;

    for wave in 0..cfg.waves {
        // --- Ingest, then make everything durable before wounding. ---
        let batch: Vec<Row> = (durable_data..durable_data + cfg.rows_per_wave)
            .map(|i| Row::at(i as i64).with("v", i as i64))
            .collect();
        server
            .add_rows("data", &batch, 0)
            .map_err(|e| err(wave, "add data", e))?;
        let aux_n = cfg.rows_per_wave / 4 + 1;
        let aux_batch: Vec<Row> = (durable_aux..durable_aux + aux_n)
            .map(|i| Row::at(i as i64).with("w", i as i64))
            .collect();
        server
            .add_rows("aux", &aux_batch, 0)
            .map_err(|e| err(wave, "add aux", e))?;
        server.sync_disk().map_err(|e| err(wave, "sync", e))?;
        durable_data += cfg.rows_per_wave;
        durable_aux += aux_n;

        // --- Draw this wave's writer (before arming, so the fault script
        // stays aligned across seeds whether or not a fault fires). ---
        let (writer, writer_name) = if cfg.mixed_writers {
            WRITERS[rng.gen_range(0..WRITERS.len())]
        } else {
            WRITERS[0]
        };
        server.set_writer_compat(writer);

        // --- Take the wave down: mid-ingest kill (even crash waves) or a
        // planned rollover with one scripted fault armed. ---
        let crash_wave = cfg.crash_waves && wave % 2 == 0;
        let mut armed_sites: Vec<&'static str> = Vec::new();
        let site_label: &'static str;
        let mut wounded = false;
        let mut c_n = 0usize;
        if crash_wave {
            wounded = rng.gen_range(0..3u32) == 0;
            let winj = if wounded {
                Some(&CRASH_INJECTIONS[rng.gen_range(0..CRASH_INJECTIONS.len())])
            } else {
                None
            };
            site_label = winj.map_or("crash::clean", |i| i.site);
            if let Some(i) = winj {
                armed_sites.push(i.site);
                if i.pre_crash {
                    scuba_faults::configure(i.site, i.plan)?;
                }
            }
            // Continuous checkpoint covering everything ingested so far.
            // Only a scripted wound is allowed to make it fail.
            if let Err(e) = server.checkpoint_and_wait() {
                if winj.is_none() {
                    return Err(err(wave, "unwounded checkpoint failed", e));
                }
            }
            // Post-checkpoint synced batch: the fast path gets it back by
            // WAL replay, the fallback from disk.
            let b_n = cfg.rows_per_wave / 2 + 1;
            let b: Vec<Row> = (durable_data..durable_data + b_n)
                .map(|i| Row::at(i as i64).with("v", i as i64))
                .collect();
            server
                .add_rows("data", &b, 0)
                .map_err(|e| err(wave, "add post-checkpoint data", e))?;
            server
                .sync_disk()
                .map_err(|e| err(wave, "post-checkpoint sync", e))?;
            durable_data += b_n;
            // Unsynced tail: rows only the WAL holds at kill time — the
            // crash discards the buffered disk writes. A fast recovery
            // must replay every one of them (and reconcile them into the
            // backup); a disk fallback surfaces only the tail rows
            // reconciled by *earlier* fast recoveries.
            c_n = cfg.rows_per_wave / 4 + 1;
            let c: Vec<Row> = (tail_next..tail_next + c_n)
                .map(|i| Row::at(i as i64).with("t", i as i64))
                .collect();
            server
                .add_rows("tail", &c, 0)
                .map_err(|e| err(wave, "add tail", e))?;
            tail_next += c_n;
            // Recovery-side wounds arm at the last instant; then the kill.
            if let Some(i) = winj {
                if !i.pre_crash {
                    scuba_faults::configure(i.site, i.plan)?;
                }
            }
            server.crash();
        } else {
            // --- Arm one scripted fault. ---
            let inj = &INJECTIONS[rng.gen_range(0..INJECTIONS.len())];
            site_label = inj.site;
            armed_sites.push(inj.site);
            scuba_faults::configure(inj.site, inj.plan)?;
            if let Some((site, plan)) = inj.companion {
                armed_sites.push(site);
                scuba_faults::configure(site, plan)?;
            }

            // --- One rollover under fire. A failed shutdown is what the
            // rollover script's timeout-kill produces: a crashed old
            // process.
            if server.shutdown_to_shm(0).is_err() {
                server.crash();
            }
        }
        // The leaf is down: the metric-fed dashboard must show the dip.
        report
            .dashboard
            .push(feed.sample_metrics(started.elapsed()));
        // With crash waves in play the even slots all crash, so alternate
        // the restore mode on wave *pairs* to keep both attach flavours
        // exercised on both the planned and the crash path.
        let two_phase_wave = if cfg.crash_waves {
            (wave / 2) % 2 == 1
        } else {
            wave % 2 == 1
        };
        leaf_cfg.restore_mode = if cfg.two_phase && two_phase_wave {
            RestoreMode::TwoPhase
        } else {
            RestoreMode::Full
        };
        let (new_server, outcome) = match LeafServer::start(leaf_cfg.clone(), 0, None) {
            Ok(pair) => pair,
            Err(_) => {
                // The replacement was wounded at a recovery phase; the
                // supervisor starts another, now past the one-shot fault.
                scuba_faults::clear_all();
                LeafServer::start(leaf_cfg.clone(), 0, None)
                    .map_err(|e| err(wave, "clean restart failed", e))?
            }
        };
        server = new_server;

        // Two-phase waves come back serving over mapped segments. Check
        // query fidelity *mid-hydration* (the zero-copy read path), then
        // drive hydration to completion like a serving event loop would.
        if server.is_hydrating() {
            let mapped = server
                .query(&Query::new("data", 0, i64::MAX))
                .map_err(|e| err(wave, "mid-hydration query", e))?;
            if mapped.rows_matched as usize != durable_data {
                return Err(err(
                    wave,
                    "mid-hydration query mismatch",
                    format!("matched {} != durable {durable_data}", mapped.rows_matched),
                ));
            }
            server
                .finish_hydration()
                .map_err(|e| err(wave, "finish hydration", e))?;
            if let Some(reason) = server.hydration_fallback_reason() {
                return Err(err(wave, "unexpected hydration fallback", reason));
            }
        }

        // --- Bookkeeping, then disarm. ---
        let mut fired = false;
        for site in armed_sites {
            let t = scuba_faults::triggered(site);
            if t > 0 {
                fired = true;
                *report.fired_by_site.entry(site.to_owned()).or_insert(0) += t;
            }
        }
        scuba_faults::clear_all();

        // --- Invariant 1: the leaf is back and serving. ---
        if server.phase() != LeafPhase::Alive {
            return Err(err(wave, "leaf not alive", server.phase().name()));
        }

        // --- Crash-wave invariants: a clean kill MUST come back through
        // the warm image + WAL replay; the unsynced tail is recovered
        // exactly (fast path, which also reconciles it into the backup).
        // A disk fallback surfaces exactly the tail reconciled by earlier
        // fast recoveries — this wave's unsynced tail rows are gone (the
        // kill discards buffered writes), but no previously-recovered row
        // may vanish. ---
        if crash_wave && !wounded && !outcome.is_memory() {
            return Err(err(
                wave,
                "clean crash fell back to disk",
                format!("{outcome:?}"),
            ));
        }
        let tail_now = if cfg.crash_waves {
            server
                .query(&Query::new("tail", 0, i64::MAX))
                .map_err(|e| err(wave, "tail query", e))?
                .rows_matched as usize
        } else {
            0
        };
        let tail_want = if crash_wave && outcome.is_memory() {
            tail_rows + c_n
        } else {
            tail_rows
        };
        if tail_now != tail_want {
            return Err(err(
                wave,
                "tail fidelity violation",
                format!(
                    "recovered {tail_now} tail rows, want {tail_want} (crash={crash_wave}, \
                     memory={}, wounded={wounded})",
                    outcome.is_memory()
                ),
            ));
        }
        tail_rows = tail_now;

        // --- Invariant 2: durably synced data survived, exactly. ---
        let expected = durable_data + durable_aux + tail_rows;
        if server.total_rows() != expected {
            return Err(err(
                wave,
                "row count mismatch",
                format!("recovered {} != durable {}", server.total_rows(), expected),
            ));
        }
        let full = server
            .query(&Query::new("data", 0, i64::MAX))
            .map_err(|e| err(wave, "query", e))?;
        if full.rows_matched as usize != durable_data {
            return Err(err(
                wave,
                "query mismatch",
                format!("matched {} != durable {}", full.rows_matched, durable_data),
            ));
        }
        // Time-range fidelity: the first half of the keyspace, exactly.
        let half = server
            .query(&Query::new("data", 0, (durable_data / 2) as i64))
            .map_err(|e| err(wave, "half query", e))?;
        if half.rows_matched as usize != durable_data / 2 {
            return Err(err(
                wave,
                "half-range query mismatch",
                format!("matched {} != {}", half.rows_matched, durable_data / 2),
            ));
        }

        // --- Invariant 3: nothing orphaned in /dev/shm. The new leaf's
        // checkpointer has not written an image yet at this point, so any
        // checkpoint segment on either parity is a leak from the wave. ---
        if ShmSegment::exists(&ns.metadata_name()) {
            return Err(err(wave, "orphan segment", ns.metadata_name()));
        }
        for i in 0..8 {
            if ShmSegment::exists(&ns.table_segment_name(i)) {
                return Err(err(wave, "orphan segment", ns.table_segment_name(i)));
            }
            for parity in 0..2 {
                if ShmSegment::exists(&ns.checkpoint_segment_name(parity, i)) {
                    return Err(err(
                        wave,
                        "orphan checkpoint segment",
                        ns.checkpoint_segment_name(parity, i),
                    ));
                }
            }
        }

        // Back up: the same feed must report the leaf answering again.
        report
            .dashboard
            .push(feed.sample_metrics(started.elapsed()));

        report.records.push(WaveRecord {
            wave,
            site: site_label,
            fired,
            memory: outcome.is_memory(),
            writer: writer_name,
            crash: crash_wave,
        });
        if outcome.is_memory() {
            report.memory_recoveries += 1;
        } else {
            report.disk_recoveries += 1;
        }
        if crash_wave {
            report.crash_waves += 1;
            if outcome.is_memory() {
                report.crash_fast_recoveries += 1;
            } else {
                report.crash_disk_fallbacks += 1;
            }
        }
        if server.recovered_from_checkpoint() {
            warm_recoveries += 1;
        }
        // Hand the wave's spans off (a telemetry sampler would); the ring
        // never accumulates more than a couple of waves' worth.
        let _ = scuba_obs::drain_spans();
        report.waves += 1;
    }
    report.final_rows = server.total_rows();
    // Metric invariants: the leaf's own fast-crash-recovery counter must
    // agree with the warm recoveries the soak observed wave by wave, and
    // every warm recovery must have been a fast one.
    if cfg.crash_waves {
        if warm_recoveries > report.crash_fast_recoveries {
            return Err(format!(
                "warm recoveries {warm_recoveries} exceed fast crash recoveries {}",
                report.crash_fast_recoveries
            ));
        }
        if scuba_obs::enabled() {
            let labels = [("leaf", server.obs_key())];
            let fast =
                scuba_obs::labeled_counter("leaf_crash_fast_recoveries_total", &labels).get();
            if fast as usize != warm_recoveries {
                return Err(format!(
                    "metric invariant violated: leaf_crash_fast_recoveries_total {fast} != \
                     observed warm recoveries {warm_recoveries}"
                ));
            }
        }
    }
    // Metric invariant: hundreds of waves of restart spans, a widened
    // ring, and a drain every wave — not one span may have been dropped.
    if scuba_obs::enabled() {
        let dropped = scuba_obs::counter_value("span_ring_dropped_total").unwrap_or(0);
        if dropped != spans_dropped_baseline {
            return Err(format!(
                "span ring dropped {} spans during the soak (counter {spans_dropped_baseline} -> \
                 {dropped})",
                dropped - spans_dropped_baseline
            ));
        }
    }
    scuba_obs::set_span_capacity(256);
    ns.unlink_all(8);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soak_config(tag: &str, waves: usize, seed: u64) -> ChaosConfig {
        let prefix = format!("chaosmod{}{}", tag, std::process::id());
        let dir = std::env::temp_dir().join(format!("scuba_{prefix}"));
        let _ = std::fs::remove_dir_all(&dir);
        ChaosConfig {
            seed,
            waves,
            rows_per_wave: 60,
            shm_prefix: prefix,
            disk_root: dir,
            copy_threads: 0,
            two_phase: true,
            mixed_writers: false,
            crash_waves: false,
        }
    }

    #[test]
    fn short_soak_passes_and_is_deterministic() {
        let cfg_a = soak_config("a", 12, 7);
        let a = run_chaos(&cfg_a).unwrap();
        assert_eq!(a.waves, 12);
        assert!(a.records.iter().any(|r| r.fired));
        // The metric-fed dashboard saw each wave's dip and recovery.
        assert_eq!(a.dashboard.rows().len(), 2 * a.waves);
        if scuba_obs::enabled() {
            assert!(a.dashboard.rows().iter().any(|r| r.availability == 0.0));
            let last = a.dashboard.rows().last().unwrap();
            assert_eq!(last.availability, 1.0);
            assert_eq!(last.new_version, 1);
        }
        let _ = std::fs::remove_dir_all(&cfg_a.disk_root);

        // Same seed, fresh state: identical wave script and outcomes.
        let cfg_b = soak_config("b", 12, 7);
        let b = run_chaos(&cfg_b).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.fired_by_site, b.fired_by_site);
        assert_eq!(a.final_rows, b.final_rows);
        let _ = std::fs::remove_dir_all(&cfg_b.disk_root);
    }

    #[test]
    fn short_soak_outcomes_survive_parallel_copy() {
        // One-shot `@N` triggers fire on global hit counters and the
        // protocol outcome (abort → cleanup → disk fallback) does not
        // depend on worker scheduling, so the wave trace with the pool
        // enabled must match the sequential trace for the same seed.
        let cfg_seq = soak_config("s1", 10, 23);
        let seq = run_chaos(&cfg_seq).unwrap();
        let _ = std::fs::remove_dir_all(&cfg_seq.disk_root);

        let mut cfg_par = soak_config("s4", 10, 23);
        cfg_par.copy_threads = 4;
        let par = run_chaos(&cfg_par).unwrap();
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.final_rows, par.final_rows);
        let _ = std::fs::remove_dir_all(&cfg_par.disk_root);
    }

    #[test]
    fn crash_wave_soak_recovers_fast_and_is_deterministic() {
        // Crash-wave soak: even waves die by mid-ingest kill. Clean kills
        // must come back through the warm checkpoint image + WAL replay
        // (asserted inside run_chaos, along with exact tail fidelity and
        // per-wave orphan sweeps); wounded ones fall back to disk. The
        // seeded script must exercise both outcomes, and the whole trace
        // must be deterministic.
        let mut cfg = soak_config("cw", 24, 41);
        cfg.crash_waves = true;
        let a = run_chaos(&cfg).unwrap();
        assert_eq!(a.waves, 24);
        assert_eq!(a.crash_waves, 12);
        assert_eq!(
            a.crash_fast_recoveries + a.crash_disk_fallbacks,
            a.crash_waves
        );
        assert!(
            a.crash_fast_recoveries > 0,
            "no crash wave took the fast path: {:?}",
            a.records
        );
        assert!(
            a.records.iter().any(|r| r.crash && !r.memory),
            "no wounded crash wave fell back to disk: {:?}",
            a.records
        );
        // Planned rollovers still interleave and still memory-restore.
        assert!(a.records.iter().any(|r| !r.crash && r.memory));
        // The metric-fed dashboard rows carry the crash-path overlay:
        // cumulative fast recoveries and (while the WAL has a tail) the
        // pending byte count.
        if scuba_obs::enabled() {
            assert!(
                a.dashboard
                    .rows()
                    .iter()
                    .any(|r| r.crash_fast_recoveries > 0),
                "dashboard never surfaced a fast crash recovery"
            );
            assert!(
                a.dashboard.rows().iter().any(|r| r.wal_bytes > 0),
                "dashboard never surfaced WAL bytes"
            );
        }
        let _ = std::fs::remove_dir_all(&cfg.disk_root);

        // Same seed, fresh state: identical crash script and outcomes.
        let mut cfg_b = soak_config("cwb", 24, 41);
        cfg_b.crash_waves = true;
        let b = run_chaos(&cfg_b).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.crash_fast_recoveries, b.crash_fast_recoveries);
        assert_eq!(a.final_rows, b.final_rows);
        let _ = std::fs::remove_dir_all(&cfg_b.disk_root);
    }

    #[test]
    fn mixed_writer_soak_restores_old_images() {
        // Upgrade-wave soak: the outgoing leaf randomly shuts down as the
        // pre-refactor v1 binary or an early-TLV v2 binary, and the
        // replacement (always the current binary) must still memory-restore
        // whenever no fault wounded the wave — across both restore modes.
        let mut cfg = soak_config("mw", 18, 99);
        cfg.mixed_writers = true;
        let report = run_chaos(&cfg).unwrap();
        assert_eq!(report.waves, 18);
        // The seeded script must actually have drawn old writers, and an
        // old-writer wave must have come back through shared memory.
        assert!(report.records.iter().any(|r| r.writer == "legacy-v1"));
        assert!(report.records.iter().any(|r| r.writer == "aged-v2"));
        assert!(
            report
                .records
                .iter()
                .any(|r| r.writer != "current" && r.memory),
            "no old-writer image memory-restored: {:?}",
            report.records
        );
        let _ = std::fs::remove_dir_all(&cfg.disk_root);

        // Determinism holds with the writer dimension in play.
        let mut cfg_b = soak_config("mwb", 18, 99);
        cfg_b.mixed_writers = true;
        let b = run_chaos(&cfg_b).unwrap();
        assert_eq!(report.records, b.records);
        let _ = std::fs::remove_dir_all(&cfg_b.disk_root);
    }
}
