//! Chaos soak for the restart protocol: repeated leaf rollovers, each with
//! one fault-injection site armed from a seeded script, asserting after
//! every wave that
//!
//! 1. the leaf comes back — a clean shared-memory restore or a
//!    [`RecoveryOutcome::Disk`] fallback, never a wedged process;
//! 2. recovered row counts and query results match everything that was
//!    durably synced before the wave (nothing synced is ever lost, nothing
//!    phantom appears);
//! 3. no shared-memory segments are left orphaned in `/dev/shm`.
//!
//! The soak drives a *real* leaf server — real segments, real disk logs —
//! through the same shutdown/restore cycle the rollover orchestrator uses,
//! standing on every ledge of the protocol: mid-chunk, between units, the
//! instant before and after each valid-bit edge, syscall failures, and
//! aborted lifecycle phases.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scuba_columnstore::Row;
use scuba_leaf::{LeafConfig, LeafPhase, LeafServer, RestoreMode, WriterCompat};
use scuba_query::Query;
use scuba_shmem::{ShmNamespace, ShmSegment};

use crate::dashboard::{Dashboard, DashboardFeed};

/// One scripted injection: the site to arm, its plan, and (for sites only
/// reachable on the disk path) a companion fault that steers the wave
/// there first.
struct Injection {
    site: &'static str,
    plan: &'static str,
    companion: Option<(&'static str, &'static str)>,
}

/// The injection script the seeded RNG draws from. Every ledge of the
/// protocol is represented; `error@1` fires on the first hit of the site
/// after arming, so each wave wounds exactly one step.
const INJECTIONS: &[Injection] = &[
    Injection {
        site: "shmem::segment::create",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::open",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::resize",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::sync",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::segment::punch_hole",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "shmem::metadata::commit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::chunk",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::chunk",
        plan: "short=4@1",
        companion: None,
    },
    Injection {
        site: "restart::backup::unit",
        plan: "error@2",
        companion: None,
    },
    Injection {
        site: "restart::backup::commit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::chunk",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::before_invalidate",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "restart::restore::after_invalidate",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "diskstore::sync",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::preparing",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::copying",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::exit",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::memory_recovery",
        plan: "error@1",
        companion: None,
    },
    Injection {
        // Kill-during-hydration: fires after a two-phase attach has
        // consumed the valid bit, so the supervisor's retry must land on
        // disk recovery with zero segment orphans. Unreachable (a clean
        // wave) when the wave rolled with the full-restore mode.
        site: "leaf::phase::hydrating",
        plan: "error@1",
        companion: None,
    },
    Injection {
        site: "leaf::phase::disk_recovery",
        plan: "error@1",
        companion: Some(("restart::backup::unit", "error@1")),
    },
];

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the wave script (same seed → same waves, same outcomes).
    pub seed: u64,
    /// Restart cycles to run.
    pub waves: usize,
    /// Rows ingested into the main table before each wave.
    pub rows_per_wave: usize,
    /// Shared-memory prefix (keeps parallel soaks apart).
    pub shm_prefix: String,
    /// Disk backup directory.
    pub disk_root: PathBuf,
    /// Copy-pipeline worker threads for the leaf under test (0 = auto).
    pub copy_threads: usize,
    /// When true, odd waves restart with [`RestoreMode::TwoPhase`]
    /// (attach + background hydration) and even waves with the classic
    /// full restore, so one soak stands faults on both paths.
    pub two_phase: bool,
    /// When true, the seeded script also varies the *writer*: each wave's
    /// outgoing leaf shuts down as the current binary, the pre-refactor v1
    /// binary, or an early-TLV v2 binary — so faults and both restore
    /// modes are stood on cross-version images, not just same-version
    /// ones.
    pub mixed_writers: bool,
}

/// Writer label drawn for a wave (stable across runs for a given seed).
const WRITERS: &[(WriterCompat, &str)] = &[
    (WriterCompat::Current, "current"),
    (WriterCompat::LegacyV1, "legacy-v1"),
    (WriterCompat::AgedV2, "aged-v2"),
];

/// What one wave did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveRecord {
    /// Wave index.
    pub wave: usize,
    /// The armed site.
    pub site: &'static str,
    /// Whether the site's trigger actually fired this wave.
    pub fired: bool,
    /// Whether the leaf came back via memory (shared-memory restore).
    pub memory: bool,
    /// Which writer format the outgoing leaf shut down with
    /// (`"current"` unless [`ChaosConfig::mixed_writers`] drew an old one).
    pub writer: &'static str,
}

/// Soak summary; the wave trace is fully deterministic for a given
/// [`ChaosConfig`] (the dashboard rows carry wall-clock timings).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Waves completed.
    pub waves: usize,
    /// Waves that came back via shared-memory restore.
    pub memory_recoveries: usize,
    /// Waves that came back via disk recovery.
    pub disk_recoveries: usize,
    /// Trigger counts per site, over the whole soak.
    pub fired_by_site: BTreeMap<String, u64>,
    /// Rows held by the leaf after the final wave.
    pub final_rows: usize,
    /// Per-wave trace.
    pub records: Vec<WaveRecord>,
    /// Figure-8 style availability trace built from the live leaf
    /// metrics: one "down" and one "recovered" sample per wave.
    pub dashboard: Dashboard,
}

impl ChaosReport {
    /// Distinct sites whose trigger fired at least once.
    pub fn distinct_sites_fired(&self) -> usize {
        self.fired_by_site.len()
    }
}

fn err(wave: usize, what: &str, detail: impl std::fmt::Display) -> String {
    format!("wave {wave}: {what}: {detail}")
}

/// Run the soak. Returns an error string describing the first violated
/// invariant, if any. Holds the fault registry's test lock for the whole
/// run (the registry is process-global).
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let _x = scuba_faults::exclusive();
    scuba_faults::clear_all();

    let mut leaf_cfg = LeafConfig::new(0, cfg.shm_prefix.clone(), cfg.disk_root.clone());
    leaf_cfg.copy_threads = cfg.copy_threads;
    let ns = ShmNamespace::new(&cfg.shm_prefix, 0).map_err(|e| e.to_string())?;
    let mut server = LeafServer::new(leaf_cfg.clone()).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Dashboard rows come straight from the leaf's published metrics.
    let mut feed = DashboardFeed::from_keys(vec![server.obs_key().to_owned()]);
    let started = Instant::now();

    let mut report = ChaosReport {
        waves: 0,
        memory_recoveries: 0,
        disk_recoveries: 0,
        fired_by_site: BTreeMap::new(),
        final_rows: 0,
        records: Vec::with_capacity(cfg.waves),
        dashboard: Dashboard::new(1),
    };
    // Rows made durable (synced) so far, per table. Nothing is ever added
    // while a fault is armed, so recovery must reproduce these exactly.
    let mut durable_data = 0usize;
    let mut durable_aux = 0usize;

    for wave in 0..cfg.waves {
        // --- Ingest, then make everything durable before wounding. ---
        let batch: Vec<Row> = (durable_data..durable_data + cfg.rows_per_wave)
            .map(|i| Row::at(i as i64).with("v", i as i64))
            .collect();
        server
            .add_rows("data", &batch, 0)
            .map_err(|e| err(wave, "add data", e))?;
        let aux_n = cfg.rows_per_wave / 4 + 1;
        let aux_batch: Vec<Row> = (durable_aux..durable_aux + aux_n)
            .map(|i| Row::at(i as i64).with("w", i as i64))
            .collect();
        server
            .add_rows("aux", &aux_batch, 0)
            .map_err(|e| err(wave, "add aux", e))?;
        server.sync_disk().map_err(|e| err(wave, "sync", e))?;
        durable_data += cfg.rows_per_wave;
        durable_aux += aux_n;

        // --- Draw this wave's writer (before arming, so the fault script
        // stays aligned across seeds whether or not a fault fires). ---
        let (writer, writer_name) = if cfg.mixed_writers {
            WRITERS[rng.gen_range(0..WRITERS.len())]
        } else {
            WRITERS[0]
        };
        server.set_writer_compat(writer);

        // --- Arm one scripted fault. ---
        let inj = &INJECTIONS[rng.gen_range(0..INJECTIONS.len())];
        scuba_faults::configure(inj.site, inj.plan)?;
        if let Some((site, plan)) = inj.companion {
            scuba_faults::configure(site, plan)?;
        }

        // --- One rollover under fire. A failed shutdown is what the
        // rollover script's timeout-kill produces: a crashed old process.
        if server.shutdown_to_shm(0).is_err() {
            server.crash();
        }
        // The leaf is down: the metric-fed dashboard must show the dip.
        report
            .dashboard
            .push(feed.sample_metrics(started.elapsed()));
        leaf_cfg.restore_mode = if cfg.two_phase && wave % 2 == 1 {
            RestoreMode::TwoPhase
        } else {
            RestoreMode::Full
        };
        let (new_server, outcome) = match LeafServer::start(leaf_cfg.clone(), 0, None) {
            Ok(pair) => pair,
            Err(_) => {
                // The replacement was wounded at a recovery phase; the
                // supervisor starts another, now past the one-shot fault.
                scuba_faults::clear_all();
                LeafServer::start(leaf_cfg.clone(), 0, None)
                    .map_err(|e| err(wave, "clean restart failed", e))?
            }
        };
        server = new_server;

        // Two-phase waves come back serving over mapped segments. Check
        // query fidelity *mid-hydration* (the zero-copy read path), then
        // drive hydration to completion like a serving event loop would.
        if server.is_hydrating() {
            let mapped = server
                .query(&Query::new("data", 0, i64::MAX))
                .map_err(|e| err(wave, "mid-hydration query", e))?;
            if mapped.rows_matched as usize != durable_data {
                return Err(err(
                    wave,
                    "mid-hydration query mismatch",
                    format!("matched {} != durable {durable_data}", mapped.rows_matched),
                ));
            }
            server
                .finish_hydration()
                .map_err(|e| err(wave, "finish hydration", e))?;
            if let Some(reason) = server.hydration_fallback_reason() {
                return Err(err(wave, "unexpected hydration fallback", reason));
            }
        }

        // --- Bookkeeping, then disarm. ---
        let mut fired = false;
        for site in std::iter::once(inj.site).chain(inj.companion.map(|(s, _)| s)) {
            let t = scuba_faults::triggered(site);
            if t > 0 {
                fired = true;
                *report.fired_by_site.entry(site.to_owned()).or_insert(0) += t;
            }
        }
        scuba_faults::clear_all();

        // --- Invariant 1: the leaf is back and serving. ---
        if server.phase() != LeafPhase::Alive {
            return Err(err(wave, "leaf not alive", server.phase().name()));
        }

        // --- Invariant 2: durably synced data survived, exactly. ---
        let expected = durable_data + durable_aux;
        if server.total_rows() != expected {
            return Err(err(
                wave,
                "row count mismatch",
                format!("recovered {} != durable {}", server.total_rows(), expected),
            ));
        }
        let full = server
            .query(&Query::new("data", 0, i64::MAX))
            .map_err(|e| err(wave, "query", e))?;
        if full.rows_matched as usize != durable_data {
            return Err(err(
                wave,
                "query mismatch",
                format!("matched {} != durable {}", full.rows_matched, durable_data),
            ));
        }
        // Time-range fidelity: the first half of the keyspace, exactly.
        let half = server
            .query(&Query::new("data", 0, (durable_data / 2) as i64))
            .map_err(|e| err(wave, "half query", e))?;
        if half.rows_matched as usize != durable_data / 2 {
            return Err(err(
                wave,
                "half-range query mismatch",
                format!("matched {} != {}", half.rows_matched, durable_data / 2),
            ));
        }

        // --- Invariant 3: nothing orphaned in /dev/shm. ---
        if ShmSegment::exists(&ns.metadata_name()) {
            return Err(err(wave, "orphan segment", ns.metadata_name()));
        }
        for i in 0..8 {
            if ShmSegment::exists(&ns.table_segment_name(i)) {
                return Err(err(wave, "orphan segment", ns.table_segment_name(i)));
            }
        }

        // Back up: the same feed must report the leaf answering again.
        report
            .dashboard
            .push(feed.sample_metrics(started.elapsed()));

        report.records.push(WaveRecord {
            wave,
            site: inj.site,
            fired,
            memory: outcome.is_memory(),
            writer: writer_name,
        });
        if outcome.is_memory() {
            report.memory_recoveries += 1;
        } else {
            report.disk_recoveries += 1;
        }
        report.waves += 1;
    }
    report.final_rows = server.total_rows();
    ns.unlink_all(8);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soak_config(tag: &str, waves: usize, seed: u64) -> ChaosConfig {
        let prefix = format!("chaosmod{}{}", tag, std::process::id());
        let dir = std::env::temp_dir().join(format!("scuba_{prefix}"));
        let _ = std::fs::remove_dir_all(&dir);
        ChaosConfig {
            seed,
            waves,
            rows_per_wave: 60,
            shm_prefix: prefix,
            disk_root: dir,
            copy_threads: 0,
            two_phase: true,
            mixed_writers: false,
        }
    }

    #[test]
    fn short_soak_passes_and_is_deterministic() {
        let cfg_a = soak_config("a", 12, 7);
        let a = run_chaos(&cfg_a).unwrap();
        assert_eq!(a.waves, 12);
        assert!(a.records.iter().any(|r| r.fired));
        // The metric-fed dashboard saw each wave's dip and recovery.
        assert_eq!(a.dashboard.rows().len(), 2 * a.waves);
        if scuba_obs::enabled() {
            assert!(a.dashboard.rows().iter().any(|r| r.availability == 0.0));
            let last = a.dashboard.rows().last().unwrap();
            assert_eq!(last.availability, 1.0);
            assert_eq!(last.new_version, 1);
        }
        let _ = std::fs::remove_dir_all(&cfg_a.disk_root);

        // Same seed, fresh state: identical wave script and outcomes.
        let cfg_b = soak_config("b", 12, 7);
        let b = run_chaos(&cfg_b).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.fired_by_site, b.fired_by_site);
        assert_eq!(a.final_rows, b.final_rows);
        let _ = std::fs::remove_dir_all(&cfg_b.disk_root);
    }

    #[test]
    fn short_soak_outcomes_survive_parallel_copy() {
        // One-shot `@N` triggers fire on global hit counters and the
        // protocol outcome (abort → cleanup → disk fallback) does not
        // depend on worker scheduling, so the wave trace with the pool
        // enabled must match the sequential trace for the same seed.
        let cfg_seq = soak_config("s1", 10, 23);
        let seq = run_chaos(&cfg_seq).unwrap();
        let _ = std::fs::remove_dir_all(&cfg_seq.disk_root);

        let mut cfg_par = soak_config("s4", 10, 23);
        cfg_par.copy_threads = 4;
        let par = run_chaos(&cfg_par).unwrap();
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.final_rows, par.final_rows);
        let _ = std::fs::remove_dir_all(&cfg_par.disk_root);
    }

    #[test]
    fn mixed_writer_soak_restores_old_images() {
        // Upgrade-wave soak: the outgoing leaf randomly shuts down as the
        // pre-refactor v1 binary or an early-TLV v2 binary, and the
        // replacement (always the current binary) must still memory-restore
        // whenever no fault wounded the wave — across both restore modes.
        let mut cfg = soak_config("mw", 18, 99);
        cfg.mixed_writers = true;
        let report = run_chaos(&cfg).unwrap();
        assert_eq!(report.waves, 18);
        // The seeded script must actually have drawn old writers, and an
        // old-writer wave must have come back through shared memory.
        assert!(report.records.iter().any(|r| r.writer == "legacy-v1"));
        assert!(report.records.iter().any(|r| r.writer == "aged-v2"));
        assert!(
            report
                .records
                .iter()
                .any(|r| r.writer != "current" && r.memory),
            "no old-writer image memory-restored: {:?}",
            report.records
        );
        let _ = std::fs::remove_dir_all(&cfg.disk_root);

        // Determinism holds with the writer dimension in play.
        let mut cfg_b = soak_config("mwb", 18, 99);
        cfg_b.mixed_writers = true;
        let b = run_chaos(&cfg_b).unwrap();
        assert_eq!(report.records, b.records);
        let _ = std::fs::remove_dir_all(&cfg_b.disk_root);
    }
}
