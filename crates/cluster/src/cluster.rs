//! The cluster: machines × leaves, the two-level aggregator query path of
//! Figure 1, and the tailer-facing leaf view.

use std::path::PathBuf;

use scuba_columnstore::table::RetentionLimits;
use scuba_columnstore::Row;
use scuba_ingest::{LeafClient, PlacementState};
use scuba_leaf::{LeafError, LeafPhase};
use scuba_query::{merge_partials, LeafQueryResult, MergedResult, Query};

use crate::machine::Machine;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Leaf servers per machine (the paper runs 8).
    pub leaves_per_machine: usize,
    /// Shared-memory name prefix for the whole cluster.
    pub shm_prefix: String,
    /// Root directory for all disk backups.
    pub disk_root: PathBuf,
    /// Per-leaf memory capacity in bytes.
    pub leaf_memory_capacity: usize,
    /// Retention limits for every leaf.
    pub retention: RetentionLimits,
}

/// A running mini-cluster of real leaf servers.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    machines: Vec<Machine>,
}

impl Cluster {
    /// Boot a cluster with all leaves empty and alive.
    pub fn new(config: ClusterConfig) -> scuba_leaf::LeafResult<Cluster> {
        let mut machines = Vec::with_capacity(config.machines);
        for m in 0..config.machines {
            machines.push(Machine::new(
                m,
                config.leaves_per_machine,
                &config.shm_prefix,
                &config.disk_root,
                config.leaf_memory_capacity,
                config.retention,
            )?);
        }
        Ok(Cluster { config, machines })
    }

    /// The construction config.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The machines.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Mutable machines.
    pub fn machines_mut(&mut self) -> &mut [Machine] {
        &mut self.machines
    }

    /// Total leaf count.
    pub fn total_leaves(&self) -> usize {
        self.config.machines * self.config.leaves_per_machine
    }

    /// Leaves currently fully alive.
    pub fn alive_leaves(&self) -> usize {
        self.machines
            .iter()
            .flat_map(|m| m.slots())
            .filter(|s| s.phase() == LeafPhase::Alive)
            .count()
    }

    /// Fraction of leaves able to answer queries right now — the "98% of
    /// data online" dashboard number.
    pub fn availability(&self) -> f64 {
        let answering = self
            .machines
            .iter()
            .flat_map(|m| m.slots())
            .filter(|s| s.phase().accepts_queries())
            .count();
        answering as f64 / self.total_leaves() as f64
    }

    /// Total rows stored across the cluster.
    pub fn total_rows(&self) -> usize {
        self.machines
            .iter()
            .flat_map(|m| m.slots())
            .filter_map(|s| s.server())
            .map(|s| s.total_rows())
            .sum()
    }

    /// Run a query through the Figure 1 topology: each machine's
    /// aggregator merges its local leaves' partials, then a root
    /// aggregator merges the per-machine results. Leaves that are down or
    /// in memory recovery simply do not contribute ("Scuba can and does
    /// return partial query results", §1).
    pub fn query(&self, query: &Query) -> MergedResult {
        let mut machine_partials: Vec<LeafQueryResult> = Vec::new();
        let mut responded = 0usize;
        for machine in &self.machines {
            let mut leaf_partials = Vec::new();
            for slot in machine.slots() {
                if let Some(server) = slot.server() {
                    if let Ok(r) = server.query(query) {
                        leaf_partials.push(r);
                    }
                }
            }
            responded += leaf_partials.len();
            // Machine-level aggregation: fold this machine's partials into
            // one (states merge associatively, so two levels are exact).
            let machine_merged = merge_leaf_partials(query, &leaf_partials);
            machine_partials.push(machine_merged);
        }
        let mut result = merge_partials(&query.aggregates, self.machines.len(), &machine_partials);
        // Report availability in leaf units, not machine units.
        result.leaves_total = self.total_leaves();
        result.leaves_responded = responded;
        result
    }

    /// A tailer-facing view of every leaf, flattened in global id order.
    /// Returns adapters implementing [`LeafClient`].
    pub fn leaf_clients(&mut self) -> Vec<SlotClient<'_>> {
        let now = 0; // deliveries stamp rows with their own times
        let _ = now;
        self.machines
            .iter_mut()
            .flat_map(|m| m.slots_mut().iter_mut())
            .map(|slot| SlotClient { slot })
            .collect()
    }
}

/// Fold leaf partials into a single partial (machine-level aggregation).
fn merge_leaf_partials(query: &Query, partials: &[LeafQueryResult]) -> LeafQueryResult {
    let mut out = LeafQueryResult::empty();
    for p in partials {
        out.rows_matched += p.rows_matched;
        out.rows_scanned += p.rows_scanned;
        out.blocks_pruned += p.blocks_pruned;
        out.blocks_scanned += p.blocks_scanned;
        for (key, states) in &p.groups {
            let merged = out
                .groups
                .entry(key.clone())
                .or_insert_with(|| query.aggregates.iter().map(|a| a.new_state()).collect());
            for (m, s) in merged.iter_mut().zip(states) {
                m.merge(s);
            }
        }
    }
    out
}

/// [`LeafClient`] adapter over a leaf slot.
#[derive(Debug)]
pub struct SlotClient<'a> {
    slot: &'a mut crate::machine::LeafSlot,
}

impl LeafClient for SlotClient<'_> {
    fn placement_state(&self) -> PlacementState {
        match self.slot.phase() {
            LeafPhase::Alive => PlacementState::Alive,
            LeafPhase::DiskRecovery => PlacementState::Restarting,
            _ => PlacementState::Down,
        }
    }

    fn free_memory(&self) -> usize {
        self.slot.server().map_or(0, |s| s.free_memory())
    }

    fn deliver(&mut self, table: &str, rows: &[Row]) -> Result<(), String> {
        let Some(server) = self.slot.server_mut() else {
            return Err("leaf process is down".to_owned());
        };
        // Rows carry their own event times; stamp blocks with the batch's
        // max time, which is what a wall clock would read.
        let now = rows.iter().map(Row::time).max().unwrap_or(0);
        server
            .add_rows(table, rows, now)
            .map_err(|e: LeafError| e.to_string())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use scuba_columnstore::Value;
    use scuba_query::AggSpec;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    pub(crate) fn test_cluster(machines: usize, leaves: usize) -> (Cluster, PathBuf) {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let prefix = format!("clus{}x{n}", std::process::id());
        let dir = std::env::temp_dir().join(format!("scuba_{prefix}"));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Cluster::new(ClusterConfig {
            machines,
            leaves_per_machine: leaves,
            shm_prefix: prefix,
            disk_root: dir.clone(),
            leaf_memory_capacity: 1 << 30,
            retention: RetentionLimits::NONE,
        })
        .unwrap();
        (c, dir)
    }

    pub(crate) fn cleanup(c: &Cluster, dir: &PathBuf) {
        for m in c.machines() {
            for s in m.slots() {
                if let Some(srv) = s.server() {
                    srv.namespace().unlink_all(8);
                }
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    fn spread_rows(c: &mut Cluster, n: i64) {
        // Deterministic round-robin placement for test predictability.
        let total = c.total_leaves();
        for i in 0..n {
            let leaf = (i as usize) % total;
            let m = leaf / c.config().leaves_per_machine;
            let l = leaf % c.config().leaves_per_machine;
            c.machines_mut()[m].slots_mut()[l]
                .server_mut()
                .unwrap()
                .add_rows("t", &[Row::at(i).with("v", i)], i)
                .unwrap();
        }
    }

    #[test]
    fn aggregator_merges_across_machines() {
        let (mut c, dir) = test_cluster(2, 2);
        spread_rows(&mut c, 100);
        assert_eq!(c.total_rows(), 100);
        let q = Query::new("t", 0, 1000).aggregates(vec![AggSpec::Count, AggSpec::Sum("v".into())]);
        let r = c.query(&q);
        assert!(r.is_complete());
        assert_eq!(r.leaves_total, 4);
        let totals = r.totals().unwrap();
        assert_eq!(totals[0], Value::Int(100));
        assert_eq!(totals[1], Value::Double((0..100).sum::<i64>() as f64));
        cleanup(&c, &dir);
    }

    #[test]
    fn partial_results_during_restart() {
        let (mut c, dir) = test_cluster(2, 2);
        spread_rows(&mut c, 100);
        // Take one leaf down (clean shutdown: data parked in shm).
        c.machines_mut()[0].slots_mut()[0].shutdown(0).unwrap();
        let r = c.query(&Query::new("t", 0, 1000));
        assert!(!r.is_complete());
        assert_eq!(r.leaves_responded, 3);
        assert!((r.availability() - 0.75).abs() < 1e-9);
        // 25 of 100 rows lived on that leaf.
        assert_eq!(r.totals().unwrap()[0], Value::Int(75));
        assert!((c.availability() - 0.75).abs() < 1e-9);

        // Bring it back: full results again.
        c.machines_mut()[0].slots_mut()[0].start(0).unwrap();
        let r = c.query(&Query::new("t", 0, 1000));
        assert!(r.is_complete());
        assert_eq!(r.totals().unwrap()[0], Value::Int(100));
        cleanup(&c, &dir);
    }

    #[test]
    fn leaf_clients_reflect_phases() {
        let (mut c, dir) = test_cluster(1, 3);
        c.machines_mut()[0].slots_mut()[1].kill();
        let clients = c.leaf_clients();
        assert_eq!(clients.len(), 3);
        assert_eq!(clients[0].placement_state(), PlacementState::Alive);
        assert_eq!(clients[1].placement_state(), PlacementState::Down);
        assert!(clients[0].free_memory() > 0);
        assert_eq!(clients[1].free_memory(), 0);
        cleanup(&c, &dir);
    }

    #[test]
    fn delivery_through_client_lands_in_leaf() {
        let (mut c, dir) = test_cluster(1, 2);
        {
            let mut clients = c.leaf_clients();
            clients[1]
                .deliver("t", &[Row::at(5).with("v", 1i64)])
                .unwrap();
            assert!(clients[0].deliver("t", &[]).is_ok());
        }
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.machines()[0].slots()[1].server().unwrap().total_rows(), 1);
        cleanup(&c, &dir);
    }
}
