//! Hosted leaves: each leaf server runs on its own thread behind a
//! request channel, like the separate OS processes of the real system.
//!
//! The single-threaded [`scuba_leaf::LeafServer`] is the paper's
//! per-server model ("without the complexity of multiple threads per
//! query per server", §2); concurrency in Scuba comes from running many
//! such servers. A [`LeafHost`] gives a leaf exactly that shape: one
//! thread owning the server, a FIFO command queue in front of it, and a
//! published status block others read without blocking — which makes the
//! §4.3 admission rules *observable*: in-flight requests drain before a
//! shutdown executes (the queue is FIFO), and requests sent to a
//! recovering leaf are rejected up front rather than queued behind a
//! multi-second restore.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Sender};
use scuba_columnstore::Row;
use scuba_ingest::PlacementState;
use scuba_leaf::{
    LeafConfig, LeafError, LeafPhase, LeafResult, LeafServer, RecoveryOutcome, ShutdownSummary,
};
use scuba_query::{LeafQueryResult, Query};

/// Phase encoding for the published status block.
const PHASE_ALIVE: u8 = 0;
const PHASE_MEMORY_RECOVERY: u8 = 1;
const PHASE_DISK_RECOVERY: u8 = 2;
const PHASE_SHUTTING_DOWN: u8 = 3;
const PHASE_DOWN: u8 = 4;

/// Lock-free status other threads read without touching the leaf thread.
/// This is the "asks them both for their current state and how much free
/// memory they have" probe of §2 — answered even mid-recovery.
#[derive(Debug)]
pub struct HostStatus {
    phase: AtomicU8,
    free_memory: AtomicUsize,
    total_rows: AtomicUsize,
    /// 0 = fresh boot / unknown, 1 = memory recovery, 2 = disk recovery.
    recovery_path: AtomicU8,
}

impl HostStatus {
    fn new(phase: u8) -> HostStatus {
        HostStatus {
            phase: AtomicU8::new(phase),
            free_memory: AtomicUsize::new(0),
            total_rows: AtomicUsize::new(0),
            recovery_path: AtomicU8::new(0),
        }
    }

    fn publish(&self, server: &LeafServer) {
        let phase = match server.phase() {
            // A hydrating leaf serves adds and queries over its attached
            // segments — for placement it is alive.
            LeafPhase::Alive | LeafPhase::Hydrating => PHASE_ALIVE,
            LeafPhase::MemoryRecovery => PHASE_MEMORY_RECOVERY,
            LeafPhase::DiskRecovery => PHASE_DISK_RECOVERY,
            LeafPhase::Preparing | LeafPhase::CopyingToShm => PHASE_SHUTTING_DOWN,
            LeafPhase::Down => PHASE_DOWN,
        };
        self.phase.store(phase, Ordering::Release);
        self.free_memory
            .store(server.free_memory(), Ordering::Release);
        self.total_rows
            .store(server.total_rows(), Ordering::Release);
    }

    /// Placement state as a tailer sees it.
    pub fn placement_state(&self) -> PlacementState {
        match self.phase.load(Ordering::Acquire) {
            PHASE_ALIVE => PlacementState::Alive,
            PHASE_DISK_RECOVERY => PlacementState::Restarting,
            _ => PlacementState::Down,
        }
    }

    /// Whether queries are admitted right now (§4.3).
    pub fn accepts_queries(&self) -> bool {
        matches!(
            self.phase.load(Ordering::Acquire),
            PHASE_ALIVE | PHASE_DISK_RECOVERY
        )
    }

    /// Whether adds are admitted right now (§4.3).
    pub fn accepts_adds(&self) -> bool {
        self.accepts_queries()
    }

    /// Published free memory in bytes.
    pub fn free_memory(&self) -> usize {
        self.free_memory.load(Ordering::Acquire)
    }

    /// Published row count.
    pub fn total_rows(&self) -> usize {
        self.total_rows.load(Ordering::Acquire)
    }

    /// True once the leaf thread has exited.
    pub fn is_down(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_DOWN
    }

    /// How this leaf's boot recovered: `None` for a fresh boot (or while
    /// recovery is still running), otherwise whether memory recovery
    /// succeeded.
    pub fn recovered_via_memory(&self) -> Option<bool> {
        match self.recovery_path.load(Ordering::Acquire) {
            1 => Some(true),
            2 => Some(false),
            _ => None,
        }
    }
}

enum Command {
    Add {
        table: String,
        rows: Vec<Row>,
        now: i64,
        reply: Sender<LeafResult<()>>,
    },
    Query {
        query: Query,
        reply: Sender<LeafResult<LeafQueryResult>>,
    },
    Expire {
        now: i64,
        reply: Sender<LeafResult<usize>>,
    },
    SyncDisk {
        reply: Sender<LeafResult<u64>>,
    },
    /// Clean shutdown: copy to shared memory, reply, exit the thread.
    Shutdown {
        now: i64,
        reply: Sender<LeafResult<ShutdownSummary>>,
    },
    /// Crash: drop everything, exit the thread.
    Kill,
}

/// A leaf server running on its own thread ("process").
#[derive(Debug)]
pub struct LeafHost {
    config: LeafConfig,
    status: Arc<HostStatus>,
    tx: Option<Sender<Command>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LeafHost {
    /// Boot a fresh, empty leaf (first deployment). The server is built
    /// on the calling thread, so the host is accepting immediately.
    pub fn fresh(config: LeafConfig) -> LeafResult<LeafHost> {
        let server = LeafServer::new(config.clone())?;
        Ok(Self::spawn(config, PHASE_ALIVE, move || Ok((server, None))))
    }

    /// Start a replacement process: recover from shared memory or disk on
    /// the leaf thread (so recovery blocks this leaf only, not the
    /// caller), then serve. The host rejects requests until recovery
    /// completes (§4.3).
    pub fn start(config: LeafConfig, now: i64) -> LeafHost {
        let cfg = config.clone();
        Self::spawn(config, PHASE_MEMORY_RECOVERY, move || {
            LeafServer::start(cfg, now, None).map(|(s, o)| (s, Some(o)))
        })
    }

    fn spawn(
        config: LeafConfig,
        initial_phase: u8,
        boot: impl FnOnce() -> LeafResult<(LeafServer, Option<RecoveryOutcome>)> + Send + 'static,
    ) -> LeafHost {
        let status = Arc::new(HostStatus::new(initial_phase));
        let (tx, rx) = unbounded::<Command>();
        let thread_status = Arc::clone(&status);
        let thread = std::thread::spawn(move || {
            let mut server = match boot() {
                Ok((server, outcome)) => {
                    if let Some(o) = &outcome {
                        thread_status
                            .recovery_path
                            .store(if o.is_memory() { 1 } else { 2 }, Ordering::Release);
                    }
                    server
                }
                Err(_) => {
                    thread_status.phase.store(PHASE_DOWN, Ordering::Release);
                    return;
                }
            };
            thread_status.publish(&server);
            // FIFO serve loop: every request enqueued before a shutdown is
            // answered before the shutdown runs — the Figure 5(c) "wait
            // for ADD/QUERY requests in progress to complete" barrier.
            while let Ok(cmd) = rx.recv() {
                // Status is published BEFORE each reply so a caller that
                // just got an Ok sees its own write reflected in the
                // lock-free counters (read-your-writes for probes).
                match cmd {
                    Command::Add {
                        table,
                        rows,
                        now,
                        reply,
                    } => {
                        let result = server.add_rows(&table, &rows, now);
                        thread_status.publish(&server);
                        let _ = reply.send(result);
                    }
                    Command::Query { query, reply } => {
                        let result = server.query(&query);
                        thread_status.publish(&server);
                        let _ = reply.send(result);
                    }
                    Command::Expire { now, reply } => {
                        let result = server.expire(now);
                        thread_status.publish(&server);
                        let _ = reply.send(result);
                    }
                    Command::SyncDisk { reply } => {
                        let result = server.sync_disk();
                        thread_status.publish(&server);
                        let _ = reply.send(result);
                    }
                    Command::Shutdown { now, reply } => {
                        let result = server.shutdown_to_shm(now);
                        let ok = result.is_ok();
                        thread_status.publish(&server);
                        let _ = reply.send(result);
                        if ok {
                            return; // process exit
                        }
                    }
                    Command::Kill => {
                        server.crash();
                        thread_status.publish(&server);
                        return;
                    }
                }
            }
        });
        LeafHost {
            config,
            status,
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    /// The leaf's configuration (for starting replacements).
    pub fn config(&self) -> &LeafConfig {
        &self.config
    }

    /// The published status block.
    pub fn status(&self) -> &Arc<HostStatus> {
        &self.status
    }

    fn sender(&self) -> LeafResult<&Sender<Command>> {
        self.tx.as_ref().ok_or(LeafError::Unavailable {
            operation: "send request",
            phase: "DOWN",
        })
    }

    /// Add rows (admission-checked against the published phase first, so
    /// callers are rejected instead of queued behind a recovery).
    pub fn add_rows(&self, table: &str, rows: Vec<Row>, now: i64) -> LeafResult<()> {
        if !self.status.accepts_adds() {
            return Err(LeafError::Unavailable {
                operation: "add rows",
                phase: "not accepting",
            });
        }
        let (reply, rx) = bounded(1);
        self.sender()?
            .send(Command::Add {
                table: table.to_owned(),
                rows,
                now,
                reply,
            })
            .map_err(|_| down("add rows"))?;
        rx.recv().map_err(|_| down("add rows"))?
    }

    /// Send a query without waiting: returns the reply receiver so a
    /// caller can fan out to many hosts concurrently.
    pub fn query_async(
        &self,
        query: &Query,
    ) -> LeafResult<crossbeam::channel::Receiver<LeafResult<LeafQueryResult>>> {
        if !self.status.accepts_queries() {
            return Err(LeafError::Unavailable {
                operation: "query",
                phase: "not accepting",
            });
        }
        let (reply, rx) = bounded(1);
        self.sender()?
            .send(Command::Query {
                query: query.clone(),
                reply,
            })
            .map_err(|_| down("query"))?;
        Ok(rx)
    }

    /// Blocking query.
    pub fn query(&self, query: &Query) -> LeafResult<LeafQueryResult> {
        self.query_async(query)?.recv().map_err(|_| down("query"))?
    }

    /// Apply retention.
    pub fn expire(&self, now: i64) -> LeafResult<usize> {
        let (reply, rx) = bounded(1);
        self.sender()?
            .send(Command::Expire { now, reply })
            .map_err(|_| down("expire"))?;
        rx.recv().map_err(|_| down("expire"))?
    }

    /// Flush the disk backup.
    pub fn sync_disk(&self) -> LeafResult<u64> {
        let (reply, rx) = bounded(1);
        self.sender()?
            .send(Command::SyncDisk { reply })
            .map_err(|_| down("sync disk"))?;
        rx.recv().map_err(|_| down("sync disk"))?
    }

    /// Clean shutdown: drains queued requests first (FIFO), copies to
    /// shared memory, and terminates the thread. Consumes the host.
    pub fn shutdown(mut self, now: i64) -> LeafResult<ShutdownSummary> {
        let (reply, rx) = bounded(1);
        self.sender()?
            .send(Command::Shutdown { now, reply })
            .map_err(|_| down("shut down"))?;
        let result = rx.recv().map_err(|_| down("shut down"))?;
        self.join();
        result
    }

    /// Crash the leaf (no shared-memory copy). Consumes the host.
    pub fn kill(mut self) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Command::Kill);
        }
        self.join();
    }

    fn join(&mut self) {
        self.tx = None; // close the channel
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.status.phase.store(PHASE_DOWN, Ordering::Release);
    }
}

impl Drop for LeafHost {
    fn drop(&mut self) {
        self.join();
    }
}

fn down(operation: &'static str) -> LeafError {
    LeafError::Unavailable {
        operation,
        phase: "DOWN",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::Value;
    use scuba_query::{merge_partials, AggSpec};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    fn config(tag: &str) -> (LeafConfig, Guard) {
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let prefix = format!("host{tag}{}", std::process::id());
        let dir =
            std::env::temp_dir().join(format!("scuba_host_{tag}_{}_{id}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (
            LeafConfig::new(id, &prefix, &dir),
            Guard {
                ns: scuba_shmem::ShmNamespace::new(&prefix, id).unwrap(),
                dir,
            },
        )
    }

    struct Guard {
        ns: scuba_shmem::ShmNamespace,
        dir: PathBuf,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            self.ns.unlink_all(8);
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    #[test]
    fn hosted_add_and_query() {
        let (cfg, _g) = config("aq");
        let host = LeafHost::fresh(cfg).unwrap();
        host.add_rows("t", (0..100).map(Row::at).collect(), 0)
            .unwrap();
        assert_eq!(host.status().total_rows(), 100);
        let r = host.query(&Query::new("t", 0, 100)).unwrap();
        assert_eq!(r.rows_matched, 100);
    }

    #[test]
    fn concurrent_clients_hammer_one_leaf() {
        let (cfg, _g) = config("conc");
        let host = Arc::new(LeafHost::fresh(cfg).unwrap());
        let mut handles = Vec::new();
        for w in 0..4i64 {
            let host = Arc::clone(&host);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    host.add_rows("t", vec![Row::at(w * 1000 + i)], 0).unwrap();
                    let r = host.query(&Query::new("t", 0, i64::MAX)).unwrap();
                    assert!(r.rows_matched >= 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(host.status().total_rows(), 200);
    }

    #[test]
    fn restart_cycle_through_hosts() {
        let (cfg, _g) = config("cycle");
        let host = LeafHost::fresh(cfg.clone()).unwrap();
        host.add_rows("t", (0..500).map(Row::at).collect(), 0)
            .unwrap();
        let summary = host.shutdown(0).unwrap();
        assert!(summary.backup.bytes_copied > 0);

        let host2 = LeafHost::start(cfg, 0);
        // Recovery happens on the leaf thread; wait for it.
        while !host2.status().accepts_queries() {
            std::thread::yield_now();
        }
        assert_eq!(host2.status().total_rows(), 500);
        let r = host2.query(&Query::new("t", 0, i64::MAX)).unwrap();
        assert_eq!(r.rows_matched, 500);
        host2.kill();
    }

    #[test]
    fn queued_queries_drain_before_shutdown() {
        // FIFO semantics: requests enqueued before the shutdown command
        // are answered (Figure 5(c)'s wait-for-in-flight).
        let (cfg, _g) = config("drain");
        let host = LeafHost::fresh(cfg).unwrap();
        host.add_rows("t", (0..100).map(Row::at).collect(), 0)
            .unwrap();
        let pending: Vec<_> = (0..8)
            .map(|_| host.query_async(&Query::new("t", 0, i64::MAX)).unwrap())
            .collect();
        let summary = host.shutdown(0).unwrap();
        assert!(summary.backup.chunks > 0);
        for rx in pending {
            let r = rx.recv().unwrap().unwrap();
            assert_eq!(r.rows_matched, 100);
        }
    }

    #[test]
    fn requests_rejected_after_down() {
        let (cfg, _g) = config("down");
        let host = LeafHost::fresh(cfg.clone()).unwrap();
        host.add_rows("t", vec![Row::at(1)], 0).unwrap();
        let status = Arc::clone(host.status());
        host.shutdown(0).unwrap();
        assert!(status.is_down());
        assert_eq!(status.placement_state(), PlacementState::Down);
        // A fresh handle on the same status rejects without blocking.
        assert!(!status.accepts_queries());
    }

    #[test]
    fn fan_out_query_across_hosts() {
        let mut hosts = Vec::new();
        let mut guards = Vec::new();
        for i in 0..3i64 {
            let (cfg, g) = config("fan");
            guards.push(g);
            let host = LeafHost::fresh(cfg).unwrap();
            host.add_rows(
                "t",
                (0..100)
                    .map(|k| Row::at(k).with("v", i * 100 + k))
                    .collect(),
                0,
            )
            .unwrap();
            hosts.push(host);
        }
        let q = Query::new("t", 0, i64::MAX).aggregates(vec![AggSpec::Count]);
        // Fan out: all leaves compute concurrently.
        let rxs: Vec<_> = hosts.iter().map(|h| h.query_async(&q).unwrap()).collect();
        let partials: Vec<_> = rxs
            .into_iter()
            .map(|rx| rx.recv().unwrap().unwrap())
            .collect();
        let merged = merge_partials(&q.aggregates, 3, &partials);
        assert_eq!(merged.totals().unwrap()[0], Value::Int(300));
        assert!(merged.is_complete());
    }

    #[test]
    fn expire_and_sync_through_host() {
        let (mut cfg, _g) = config("exp");
        cfg.retention = scuba_columnstore::table::RetentionLimits {
            max_age_secs: Some(50),
            max_bytes: None,
        };
        let host = LeafHost::fresh(cfg).unwrap();
        host.add_rows("t", (0..100).map(Row::at).collect(), 0)
            .unwrap();
        let synced = host.sync_disk().unwrap();
        assert!(synced > 0);
        // Seal happens at shutdown; expire only drops sealed blocks, so
        // nothing goes yet.
        assert_eq!(host.expire(1000).unwrap(), 0);
        assert_eq!(host.status().total_rows(), 100);
    }

    #[test]
    fn crash_then_disk_recovery_in_new_host() {
        let (cfg, _g) = config("crash");
        let host = LeafHost::fresh(cfg.clone()).unwrap();
        host.add_rows("t", (0..50).map(Row::at).collect(), 0)
            .unwrap();
        host.sync_disk().unwrap();
        host.kill();

        let host2 = LeafHost::start(cfg, 0);
        while !host2.status().accepts_queries() {
            std::thread::yield_now();
        }
        assert_eq!(host2.status().total_rows(), 50);
        host2.kill();
    }
}
