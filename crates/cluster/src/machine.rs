//! A machine hosting several leaf servers.
//!
//! "Each machine currently runs eight leaf servers and one aggregator
//! server. ... eight servers mean that we can restart the servers one at
//! a time, while the other seven servers continue to execute queries."
//! (§2)

#[cfg(test)]
use std::path::PathBuf;

use scuba_columnstore::table::RetentionLimits;
use scuba_leaf::{LeafConfig, LeafPhase, LeafServer, RecoveryOutcome};

/// One leaf slot on a machine: the server when its process is up, plus the
/// config needed to start a replacement process.
#[derive(Debug)]
pub struct LeafSlot {
    config: LeafConfig,
    server: Option<LeafServer>,
}

impl LeafSlot {
    /// The slot's leaf configuration.
    pub fn config(&self) -> &LeafConfig {
        &self.config
    }

    /// The running server, if up.
    pub fn server(&self) -> Option<&LeafServer> {
        self.server.as_ref()
    }

    /// Mutable access to the running server.
    pub fn server_mut(&mut self) -> Option<&mut LeafServer> {
        self.server.as_mut()
    }

    /// Current phase (Down when no process).
    pub fn phase(&self) -> LeafPhase {
        self.server
            .as_ref()
            .map(LeafServer::phase)
            .unwrap_or(LeafPhase::Down)
    }

    /// Shut the leaf down through shared memory and drop the process.
    /// Returns the shutdown summary.
    pub fn shutdown(&mut self, now: i64) -> scuba_leaf::LeafResult<scuba_leaf::ShutdownSummary> {
        let mut server = self
            .server
            .take()
            .ok_or(scuba_leaf::LeafError::Unavailable {
                operation: "shut down",
                phase: "DOWN",
            })?;
        let summary = server.shutdown_to_shm(now);
        // On failure, the old process keeps running (the rollover script
        // would kill it; our caller decides).
        match summary {
            Ok(s) => Ok(s), // process exits: server dropped
            Err(e) => {
                self.server = Some(server);
                Err(e)
            }
        }
    }

    /// Stamp this slot's restart spans with `id`: applied to the running
    /// server immediately and inherited by every replacement process the
    /// slot starts. The rollover sets this per wave so one telemetry
    /// query reconstructs the whole restart timeline.
    pub fn set_trace_id(&mut self, id: u64) {
        self.config.trace_id = id;
        if let Some(s) = self.server.as_mut() {
            s.set_trace_id(id);
        }
    }

    /// Kill the leaf without a clean shutdown (crash, or the rollover
    /// script's 3-minute timeout kill).
    pub fn kill(&mut self) {
        if let Some(mut s) = self.server.take() {
            s.crash();
        }
    }

    /// Start a replacement process, recovering from shared memory or disk.
    pub fn start(&mut self, now: i64) -> scuba_leaf::LeafResult<RecoveryOutcome> {
        let (server, outcome) = LeafServer::start(self.config.clone(), now, None)?;
        self.server = Some(server);
        Ok(outcome)
    }
}

/// A machine: a set of leaf slots (the aggregator is a pure function in
/// [`crate::cluster`], matching its stateless role).
#[derive(Debug)]
pub struct Machine {
    id: usize,
    slots: Vec<LeafSlot>,
}

impl Machine {
    /// Create a machine with `leaves` slots, each with its own disk root
    /// and shared-memory namespace derived from `cluster_prefix` and the
    /// global leaf numbering.
    pub fn new(
        id: usize,
        leaves: usize,
        cluster_prefix: &str,
        disk_root: &std::path::Path,
        memory_capacity: usize,
        retention: RetentionLimits,
    ) -> scuba_leaf::LeafResult<Machine> {
        let mut slots = Vec::with_capacity(leaves);
        for l in 0..leaves {
            let global_id = (id * leaves + l) as u32;
            let mut config = LeafConfig::new(
                global_id,
                cluster_prefix,
                disk_root.join(format!("m{id}_l{l}")),
            );
            config.memory_capacity = memory_capacity;
            config.retention = retention;
            let server = LeafServer::new(config.clone())?;
            slots.push(LeafSlot {
                config,
                server: Some(server),
            });
        }
        Ok(Machine { id, slots })
    }

    /// Machine index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The leaf slots.
    pub fn slots(&self) -> &[LeafSlot] {
        &self.slots
    }

    /// Mutable leaf slots.
    pub fn slots_mut(&mut self) -> &mut [LeafSlot] {
        &mut self.slots
    }

    /// Number of leaves currently restarting (not Alive). The rollover
    /// policy keeps this ≤ 1 per machine so restarts get the machine's
    /// full disk/memory bandwidth (§2, §6).
    pub fn restarting_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.phase() != LeafPhase::Alive)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::Row;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    fn test_machine(leaves: usize) -> (Machine, PathBuf, String) {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let prefix = format!("mach{}x{}", std::process::id(), n);
        let dir = std::env::temp_dir().join(format!("scuba_{prefix}"));
        let _ = std::fs::remove_dir_all(&dir);
        let m = Machine::new(0, leaves, &prefix, &dir, 1 << 30, RetentionLimits::NONE).unwrap();
        (m, dir, prefix)
    }

    fn cleanup(m: &Machine, dir: &PathBuf) {
        for s in m.slots() {
            if let Some(srv) = s.server() {
                srv.namespace().unlink_all(8);
            }
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn machine_hosts_independent_leaves() {
        let (mut m, dir, _) = test_machine(3);
        m.slots_mut()[0]
            .server_mut()
            .unwrap()
            .add_rows("t", &[Row::at(1)], 0)
            .unwrap();
        assert_eq!(m.slots()[0].server().unwrap().total_rows(), 1);
        assert_eq!(m.slots()[1].server().unwrap().total_rows(), 0);
        assert_eq!(m.restarting_count(), 0);
        cleanup(&m, &dir);
    }

    #[test]
    fn slot_restart_cycle() {
        let (mut m, dir, _) = test_machine(2);
        let slot = &mut m.slots_mut()[0];
        slot.server_mut()
            .unwrap()
            .add_rows("t", &(0..100).map(Row::at).collect::<Vec<_>>(), 0)
            .unwrap();
        slot.shutdown(0).unwrap();
        assert_eq!(slot.phase(), LeafPhase::Down);
        assert_eq!(m.restarting_count(), 1);
        let outcome = m.slots_mut()[0].start(0).unwrap();
        assert!(outcome.is_memory());
        assert_eq!(m.slots()[0].server().unwrap().total_rows(), 100);
        assert_eq!(m.restarting_count(), 0);
        cleanup(&m, &dir);
    }

    #[test]
    fn kill_forces_disk_recovery() {
        let (mut m, dir, _) = test_machine(1);
        let slot = &mut m.slots_mut()[0];
        slot.server_mut()
            .unwrap()
            .add_rows("t", &(0..10).map(Row::at).collect::<Vec<_>>(), 0)
            .unwrap();
        slot.server_mut().unwrap().sync_disk().unwrap();
        slot.kill();
        let outcome = slot.start(0).unwrap();
        assert!(!outcome.is_memory());
        assert_eq!(slot.server().unwrap().total_rows(), 10);
        cleanup(&m, &dir);
    }

    #[test]
    fn shutdown_of_down_slot_errors() {
        let (mut m, dir, _) = test_machine(1);
        m.slots_mut()[0].kill();
        assert!(m.slots_mut()[0].shutdown(0).is_err());
        cleanup(&m, &dir);
    }
}
