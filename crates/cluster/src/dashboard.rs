//! The rollover dashboard of Figure 8.
//!
//! "Dashboard shows progress of the restart. At time 1, about 2% of the
//! leaf servers have started a rollover. 98% of the data is available to
//! queries. At time 2, those leaf servers are now alive and another 2%
//! are restarting. By time 3, about half of the servers are running the
//! new version ... At time 4, the restart is nearly complete."
//!
//! [`Dashboard`] collects old/rolling/new counts over time (from the real
//! rollover or the simulator) and renders them as the stacked ASCII bars
//! an engineer would watch.

use std::fmt;
use std::time::Duration;

use crate::cluster::Cluster;

/// One sample of rollover progress.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardRow {
    /// Time since the rollover started.
    pub elapsed: Duration,
    /// Leaves still on the old version.
    pub old_version: usize,
    /// Leaves currently restarting.
    pub rolling: usize,
    /// Leaves already on the new version.
    pub new_version: usize,
    /// Of the `new_version` leaves, how many are answering queries over
    /// attached shared memory while background hydration still runs (the
    /// two-phase restore's serving-but-not-done window). Informational
    /// overlay — these leaves count as new/answering in the partition.
    pub hydrating: usize,
    /// Query availability at this instant (fraction of leaves answering).
    pub availability: f64,
    /// Crash-path overlay, summed across leaves: sealed row blocks not
    /// yet covered by a warm checkpoint image (`leaf_checkpoint_lag_blocks`).
    /// Zero when the continuous-checkpoint path is off.
    pub checkpoint_lag_blocks: i64,
    /// WAL record bytes pending replay across leaves (`leaf_wal_bytes`).
    pub wal_bytes: i64,
    /// Slowest WAL tail replay seen on any leaf, in nanoseconds
    /// (`leaf_wal_replay_ns`).
    pub wal_replay_ns: i64,
    /// Cumulative fast crash recoveries across the fleet
    /// (`leaf_crash_fast_recoveries_total`).
    pub crash_fast_recoveries: u64,
    /// Lazy-hydration overlay, summed across leaves: mapped blocks parked
    /// until a query touches them (`leaf_hydration_on_access_blocks`).
    /// Zero under eager hydration.
    pub on_access_blocks: i64,
}

/// A time series of rollover progress.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    total: usize,
    rows: Vec<DashboardRow>,
}

impl Dashboard {
    /// An empty dashboard over `total` leaves.
    pub fn new(total: usize) -> Dashboard {
        Dashboard {
            total,
            rows: Vec::new(),
        }
    }

    /// Total leaves being rolled.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Append a sample.
    pub fn push(&mut self, row: DashboardRow) {
        debug_assert_eq!(
            row.old_version + row.rolling + row.new_version,
            self.total,
            "dashboard row must partition the fleet"
        );
        self.rows.push(row);
    }

    /// The samples, oldest first.
    pub fn rows(&self) -> &[DashboardRow] {
        &self.rows
    }

    /// Render an ASCII dashboard: one bar per sample (down-sampled to at
    /// most `max_rows` lines), `#` = new version, `~` = rolling, `.` =
    /// old version.
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str("  elapsed    old / rolling / new    availability\n");
        if self.rows.is_empty() || self.total == 0 {
            out.push_str("  (no samples)\n");
            return out;
        }
        let stride = self.rows.len().div_ceil(max_rows.max(1));
        const WIDTH: usize = 40;
        for (i, row) in self.rows.iter().enumerate() {
            if i % stride != 0 && i != self.rows.len() - 1 {
                continue;
            }
            let new_w = row.new_version * WIDTH / self.total;
            let roll_w = row.rolling * WIDTH / self.total;
            let old_w = WIDTH - new_w - roll_w;
            out.push_str(&format!(
                "  {:>8.1}s  [{}{}{}]  {:>4} / {:>4} / {:>4}  {:>6.1}%\n",
                row.elapsed.as_secs_f64(),
                "#".repeat(new_w),
                "~".repeat(roll_w),
                ".".repeat(old_w),
                row.old_version,
                row.rolling,
                row.new_version,
                row.availability * 100.0
            ));
        }
        out
    }
}

impl fmt::Display for Dashboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(20))
    }
}

/// Produces [`DashboardRow`]s from the live per-leaf metrics published by
/// `scuba-leaf` (`leaf_recoveries_total`, `leaf_accepting_queries`)
/// instead of hand-constructed samples.
///
/// The feed snapshots each leaf's recovery counter at creation; a leaf
/// whose counter has advanced past that baseline has come back on the
/// "new version". A leaf whose gauge says it is not answering queries is
/// "rolling"; everyone else is still "old". Availability is the fraction
/// of leaves answering — by construction the same number
/// [`Cluster::availability`] computes from slot phases, because every
/// phase transition in the leaf server routes through the gauge.
///
/// When instrumentation is disabled ([`scuba_obs::enabled`] is false) the
/// gauges are never written, so [`DashboardFeed::sample`] falls back to
/// reading slot phases directly and classifies a leaf as "new" once it
/// has been observed down and then answering again.
#[derive(Debug)]
pub struct DashboardFeed {
    keys: Vec<String>,
    baseline: Vec<u64>,
    /// Fallback state for the metrics-disabled path: set once a leaf is
    /// seen not answering; a leaf that answers again afterwards is "new".
    seen_down: Vec<bool>,
}

fn recoveries(key: &str) -> u64 {
    let name = scuba_obs::labeled_name("leaf_recoveries_total", &[("leaf", key)]);
    scuba_obs::counter_value(&name).unwrap_or(0)
}

fn accepting(key: &str) -> Option<bool> {
    let name = scuba_obs::labeled_name("leaf_accepting_queries", &[("leaf", key)]);
    scuba_obs::gauge_value(&name).map(|v| v > 0)
}

fn is_hydrating(key: &str) -> bool {
    let name = scuba_obs::labeled_name("leaf_phase", &[("leaf", key)]);
    scuba_obs::gauge_value(&name) == Some(i64::from(scuba_leaf::LeafPhase::Hydrating.index()))
}

fn leaf_gauge(name: &str, key: &str) -> i64 {
    let name = scuba_obs::labeled_name(name, &[("leaf", key)]);
    scuba_obs::gauge_value(&name).unwrap_or(0)
}

fn leaf_counter(name: &str, key: &str) -> u64 {
    let name = scuba_obs::labeled_name(name, &[("leaf", key)]);
    scuba_obs::counter_value(&name).unwrap_or(0)
}

impl DashboardFeed {
    /// A feed over every leaf in `cluster`, with recovery baselines taken
    /// now. Create it immediately before starting a rollover.
    pub fn new(cluster: &Cluster) -> DashboardFeed {
        let keys = cluster
            .machines()
            .iter()
            .flat_map(|m| m.slots())
            .map(|s| format!("{}:{}", s.config().shm_prefix, s.config().leaf_id))
            .collect();
        DashboardFeed::from_keys(keys)
    }

    /// A feed over an explicit set of leaf metric keys (each leaf's
    /// `shm_prefix:leaf_id`), for callers without a [`Cluster`] handle —
    /// the chaos soak rolls a single bare [`scuba_leaf::LeafServer`].
    pub fn from_keys(keys: Vec<String>) -> DashboardFeed {
        let baseline = keys.iter().map(|k| recoveries(k)).collect();
        let seen_down = vec![false; keys.len()];
        DashboardFeed {
            keys,
            baseline,
            seen_down,
        }
    }

    /// Sample the fleet: one row classifying every leaf as old/rolling/new
    /// from the metric registry, falling back to slot phases when
    /// instrumentation is disabled.
    pub fn sample(&mut self, cluster: &Cluster, elapsed: Duration) -> DashboardRow {
        let phases: Vec<bool> = cluster
            .machines()
            .iter()
            .flat_map(|m| m.slots())
            .map(|s| s.phase().accepts_queries())
            .collect();
        self.sample_inner(elapsed, &phases)
    }

    /// Sample purely from the metric registry, with no cluster handle.
    /// With instrumentation disabled there is nothing to read, so every
    /// leaf reports as answering on the old version.
    pub fn sample_metrics(&mut self, elapsed: Duration) -> DashboardRow {
        let fallback = vec![true; self.keys.len()];
        self.sample_inner(elapsed, &fallback)
    }

    fn sample_inner(&mut self, elapsed: Duration, fallback_accepts: &[bool]) -> DashboardRow {
        let total = self.keys.len();
        let mut old_version = 0;
        let mut rolling = 0;
        let mut new_version = 0;
        let mut hydrating = 0;
        let mut answering = 0;
        let mut checkpoint_lag_blocks = 0i64;
        let mut wal_bytes = 0i64;
        let mut wal_replay_ns = 0i64;
        let mut crash_fast_recoveries = 0u64;
        let mut on_access_blocks = 0i64;
        for (i, key) in self.keys.iter().enumerate() {
            checkpoint_lag_blocks += leaf_gauge("leaf_checkpoint_lag_blocks", key);
            on_access_blocks += leaf_gauge("leaf_hydration_on_access_blocks", key);
            wal_bytes += leaf_gauge("leaf_wal_bytes", key);
            wal_replay_ns = wal_replay_ns.max(leaf_gauge("leaf_wal_replay_ns", key));
            crash_fast_recoveries += leaf_counter("leaf_crash_fast_recoveries_total", key);
            let accepts =
                accepting(key).unwrap_or_else(|| fallback_accepts.get(i).copied().unwrap_or(true));
            if accepts {
                answering += 1;
            } else {
                self.seen_down[i] = true;
            }
            let recovered = match scuba_obs::enabled() {
                true => recoveries(key) > self.baseline[i],
                false => self.seen_down[i] && accepts,
            };
            if !accepts {
                rolling += 1;
            } else if recovered {
                new_version += 1;
                if scuba_obs::enabled() && is_hydrating(key) {
                    hydrating += 1;
                }
            } else {
                old_version += 1;
            }
        }
        DashboardRow {
            elapsed,
            old_version,
            rolling,
            new_version,
            hydrating,
            availability: if total == 0 {
                1.0
            } else {
                answering as f64 / total as f64
            },
            checkpoint_lag_blocks,
            wal_bytes,
            wal_replay_ns,
            crash_fast_recoveries,
            on_access_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(elapsed: u64, old: usize, rolling: usize, new: usize, avail: f64) -> DashboardRow {
        DashboardRow {
            elapsed: Duration::from_secs(elapsed),
            old_version: old,
            rolling,
            new_version: new,
            hydrating: 0,
            availability: avail,
            checkpoint_lag_blocks: 0,
            wal_bytes: 0,
            wal_replay_ns: 0,
            crash_fast_recoveries: 0,
            on_access_blocks: 0,
        }
    }

    #[test]
    fn collects_rows() {
        let mut d = Dashboard::new(100);
        d.push(row(0, 98, 2, 0, 0.98));
        d.push(row(60, 96, 2, 2, 0.98));
        assert_eq!(d.rows().len(), 2);
        assert_eq!(d.total(), 100);
    }

    #[test]
    fn render_shows_progress_glyphs() {
        let mut d = Dashboard::new(10);
        d.push(row(0, 10, 0, 0, 1.0));
        d.push(row(30, 4, 1, 5, 0.9));
        d.push(row(60, 0, 0, 10, 1.0));
        let s = d.render(10);
        assert!(s.contains("availability"));
        // Final row is fully '#'.
        let last = s.lines().last().unwrap();
        assert!(last.contains(&"#".repeat(40)), "{last}");
        assert!(s.contains("~"), "{s}");
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn render_downsamples_long_series() {
        let mut d = Dashboard::new(4);
        for i in 0..100 {
            d.push(row(i, 4, 0, 0, 1.0));
        }
        let s = d.render(10);
        let bars = s.lines().count() - 1; // minus header
        assert!(bars <= 12, "{bars} lines");
    }

    #[test]
    fn empty_dashboard_renders() {
        let d = Dashboard::new(0);
        assert!(d.render(5).contains("no samples"));
        assert!(d.to_string().contains("no samples"));
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_partition_panics_in_debug() {
        let mut d = Dashboard::new(10);
        d.push(row(0, 5, 0, 0, 1.0));
    }
}
