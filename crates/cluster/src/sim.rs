//! Paper-scale rollover simulator.
//!
//! A laptop cannot hold hundreds of machines with 120 GB of RAM each, so
//! the cluster-scale numbers (rollover duration, availability — §1, §4.5,
//! §6, Figure 8) are reproduced with a pipelined discrete-event model.
//! The model is deliberately simple because the mechanism's costs are
//! linear in bytes moved per device:
//!
//! * **disk recovery** per leaf = data / (machine disk bandwidth ÷
//!   concurrent restarts on that machine) + data / (machine translate
//!   throughput ÷ concurrent restarts) + fixed overhead. Translation is
//!   machine-shared and slow — it is the "2.5-3 hours to read and format"
//!   cost of §1.
//! * **shared-memory recovery** per leaf = data copied out + copied back
//!   at the machine's memory bandwidth (÷ concurrency) + fixed overhead
//!   (process start, "the time to detect that a leaf is done with
//!   recovery and then initiate rollover for the next one", §4.5).
//!
//! The orchestrator model matches §4.5: a bounded pool of concurrent
//! restarts (2% of leaves), at most one per machine (§2's bandwidth
//! argument), refilled as leaves finish.
//!
//! Calibration notes and the paper-vs-simulated table live in
//! EXPERIMENTS.md; the defaults below reproduce the paper's headline
//! numbers to within their own bands.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which recovery path the rollover uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPath {
    /// Copy through shared memory (clean shutdown).
    SharedMemory,
    /// Read + translate the disk backup.
    Disk,
}

/// Cluster and device parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of machines ("hundreds", §1; default 100).
    pub machines: usize,
    /// Leaf servers per machine (§2: 8).
    pub leaves_per_machine: usize,
    /// Bytes of in-memory data per leaf (§4.4: 10–15 GB; default 15 GB).
    pub data_per_leaf_bytes: u64,
    /// Disk read bandwidth per machine, shared by its restarting leaves.
    pub disk_bw_machine: u64,
    /// Disk-format → heap-format translation throughput per machine,
    /// shared (the dominant disk-recovery cost).
    pub translate_bw_machine: u64,
    /// Memory copy bandwidth per machine, shared ("the critical resource
    /// is the memory bandwidth", §2).
    pub mem_bw_machine: u64,
    /// Fraction of leaves restarting concurrently (§4.5: 2%).
    pub restart_fraction: f64,
    /// Fixed per-leaf overhead on the shared-memory path (process start,
    /// completion detection, initiating the next leaf).
    pub shm_overhead_secs: f64,
    /// Fixed per-leaf overhead on the disk path.
    pub disk_overhead_secs: f64,
    /// One-time deployment tooling overhead (§6: "The deployment software
    /// is responsible for about 40 minutes of overhead.").
    pub deploy_overhead_secs: f64,
    /// Heterogeneity of per-leaf data (0.0 = uniform; 0.3 = sizes vary
    /// ±30% around the mean, deterministic per leaf). Real leaves differ
    /// because the two-random-choice placement only balances approximately.
    pub data_jitter: f64,
}

impl SimConfig {
    /// Defaults calibrated to the paper's production numbers (see
    /// EXPERIMENTS.md for the derivation).
    pub fn paper_defaults() -> SimConfig {
        SimConfig {
            machines: 100,
            leaves_per_machine: 8,
            data_per_leaf_bytes: 15 << 30,
            disk_bw_machine: 150 << 20,
            translate_bw_machine: 20 << 20,
            mem_bw_machine: 4 << 30,
            restart_fraction: 0.02,
            shm_overhead_secs: 20.0,
            disk_overhead_secs: 30.0,
            deploy_overhead_secs: 40.0 * 60.0,
            data_jitter: 0.0,
        }
    }

    /// Total leaves in the cluster.
    pub fn total_leaves(&self) -> usize {
        self.machines * self.leaves_per_machine
    }
}

/// Deterministic per-leaf data size under `data_jitter`: a hash of the
/// leaf's global id maps to a factor in `1 ± jitter`.
pub fn leaf_data_bytes(cfg: &SimConfig, global_leaf_id: usize) -> f64 {
    let base = cfg.data_per_leaf_bytes as f64;
    if cfg.data_jitter <= 0.0 {
        return base;
    }
    // SplitMix64-style scramble for a uniform-ish u in [0, 1).
    let mut z = (global_leaf_id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    base * (1.0 + cfg.data_jitter * (2.0 * u - 1.0))
}

/// One restart of one leaf: duration given `concurrent` leaves restarting
/// on the same machine at the same time (mean-sized leaf; use
/// [`leaf_restart_secs_for`] for a specific leaf under jitter).
pub fn leaf_restart_secs(cfg: &SimConfig, path: RecoveryPath, concurrent: usize) -> f64 {
    leaf_restart_secs_bytes(cfg, path, concurrent, cfg.data_per_leaf_bytes as f64)
}

/// Like [`leaf_restart_secs`] but for a specific leaf's (possibly
/// jittered) data size.
pub fn leaf_restart_secs_for(
    cfg: &SimConfig,
    path: RecoveryPath,
    concurrent: usize,
    global_leaf_id: usize,
) -> f64 {
    leaf_restart_secs_bytes(cfg, path, concurrent, leaf_data_bytes(cfg, global_leaf_id))
}

fn leaf_restart_secs_bytes(
    cfg: &SimConfig,
    path: RecoveryPath,
    concurrent: usize,
    data: f64,
) -> f64 {
    let concurrent = concurrent.max(1) as f64;
    match path {
        RecoveryPath::SharedMemory => {
            let bw = cfg.mem_bw_machine as f64 / concurrent;
            // Copy heap→shm at shutdown, shm→heap at startup.
            data / bw * 2.0 + cfg.shm_overhead_secs
        }
        RecoveryPath::Disk => {
            let read_bw = cfg.disk_bw_machine as f64 / concurrent;
            let translate_bw = cfg.translate_bw_machine as f64 / concurrent;
            data / read_bw + data / translate_bw + cfg.disk_overhead_secs
        }
    }
}

/// A point on the simulated Figure-8 dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Simulated seconds since the rollover started.
    pub t_secs: f64,
    /// Leaves still on the old version.
    pub old: usize,
    /// Leaves restarting.
    pub rolling: usize,
    /// Leaves on the new version.
    pub new: usize,
    /// Query availability (1 - rolling/total).
    pub availability: f64,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Which path was simulated.
    pub path: RecoveryPath,
    /// Leaves restarted.
    pub leaves: usize,
    /// Restart time excluding deployment tooling overhead.
    pub restart_secs: f64,
    /// Total rollover time including deployment overhead.
    pub total_secs: f64,
    /// Mean per-leaf restart duration.
    pub mean_leaf_secs: f64,
    /// Lowest availability during the rollover.
    pub min_availability: f64,
    /// Time-weighted mean availability over the restart window (the
    /// integral behind the "98% of data online" figure).
    pub mean_availability: f64,
    /// Fraction of a week with **all** data available, assuming one
    /// rollover per week — the paper's 93% vs 99.5% metric (§1).
    pub full_availability_weekly: f64,
    /// Dashboard time series.
    pub timeline: Vec<SimSnapshot>,
}

/// Simulate a full-cluster rollover: a pool of `fraction × leaves`
/// concurrent restarts, at most one per machine, refilled as leaves
/// finish (pipelined, like the real script's wait-and-initiate loop).
pub fn simulate_rollover(cfg: &SimConfig, path: RecoveryPath) -> SimResult {
    let total = cfg.total_leaves();
    let pool = ((total as f64 * cfg.restart_fraction).ceil() as usize).clamp(1, total);

    // Remaining leaves to restart per machine.
    let mut remaining: Vec<usize> = vec![cfg.leaves_per_machine; cfg.machines];
    // Machines with a restart in flight.
    let mut busy: Vec<bool> = vec![false; cfg.machines];
    // (finish_time, machine) min-heap. f64 isn't Ord; scale to integer µs.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let to_us = |t: f64| (t * 1e6) as u64;

    let mut now = 0.0f64;
    let mut done = 0usize;
    let mut rolling = 0usize;
    let mut sum_leaf = 0.0f64;
    let mut timeline: Vec<SimSnapshot> = Vec::new();
    let mut min_avail = 1.0f64;

    let mut next_machine = 0usize;
    let mut start_while_possible = |now: f64,
                                    rolling: &mut usize,
                                    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
                                    busy: &mut [bool],
                                    remaining: &mut [usize],
                                    sum_leaf: &mut f64| {
        // The ≤1-per-machine rule only binds while enough distinct
        // machines still have work; past that, allow stacking (the
        // pool is the cluster-wide 2% bound either way).
        while *rolling < pool {
            let mut started = false;
            for off in 0..busy.len() {
                let m = (next_machine + off) % busy.len();
                if remaining[m] > 0 && !busy[m] {
                    // Global leaf id: machine-major, leaf index from how
                    // many of this machine's leaves already started.
                    let leaf_idx = cfg.leaves_per_machine - remaining[m];
                    let global_id = m * cfg.leaves_per_machine + leaf_idx;
                    let dur = leaf_restart_secs_for(cfg, path, 1, global_id);
                    *sum_leaf += dur;
                    heap.push(Reverse((to_us(now + dur), m)));
                    busy[m] = true;
                    remaining[m] -= 1;
                    *rolling += 1;
                    next_machine = (m + 1) % busy.len();
                    started = true;
                    break;
                }
            }
            if !started {
                break;
            }
        }
    };

    start_while_possible(
        now,
        &mut rolling,
        &mut heap,
        &mut busy,
        &mut remaining,
        &mut sum_leaf,
    );
    timeline.push(SimSnapshot {
        t_secs: 0.0,
        old: total - rolling,
        rolling,
        new: 0,
        availability: 1.0 - rolling as f64 / total as f64,
    });
    min_avail = min_avail.min(1.0 - rolling as f64 / total as f64);

    let mut avail_integral = 0.0f64;
    let mut last_t = 0.0f64;
    while let Some(Reverse((t_us, machine))) = heap.pop() {
        let t = t_us as f64 / 1e6;
        avail_integral += (1.0 - rolling as f64 / total as f64) * (t - last_t);
        last_t = t;
        now = t;
        busy[machine] = false;
        rolling -= 1;
        done += 1;
        start_while_possible(
            now,
            &mut rolling,
            &mut heap,
            &mut busy,
            &mut remaining,
            &mut sum_leaf,
        );
        let avail = 1.0 - rolling as f64 / total as f64;
        min_avail = min_avail.min(avail);
        timeline.push(SimSnapshot {
            t_secs: now,
            old: total - done - rolling,
            rolling,
            new: done,
            availability: avail,
        });
    }

    let restart_secs = now;
    let total_secs = restart_secs + cfg.deploy_overhead_secs;
    const WEEK: f64 = 7.0 * 24.0 * 3600.0;
    SimResult {
        path,
        leaves: total,
        restart_secs,
        total_secs,
        mean_leaf_secs: sum_leaf / total as f64,
        min_availability: min_avail,
        mean_availability: if restart_secs > 0.0 {
            avail_integral / restart_secs
        } else {
            1.0
        },
        full_availability_weekly: (WEEK - total_secs).max(0.0) / WEEK,
        timeline,
    }
}

/// Convenience for examples and benches: simulate both recovery paths at
/// the paper's default scale. Returns `(shared_memory, disk)`.
pub fn simulate_rollover_paths() -> (SimResult, SimResult) {
    let cfg = SimConfig::paper_defaults();
    (
        simulate_rollover(&cfg, RecoveryPath::SharedMemory),
        simulate_rollover(&cfg, RecoveryPath::Disk),
    )
}

/// Simulate restarting `concurrent` leaves of a single machine at once
/// (no orchestrator): returns the machine's total recovery seconds. With
/// `concurrent = leaves_per_machine` and the disk path this is the §1
/// "2.5-3 hours per machine"; with the shm path it is §6's "2-3 minutes".
pub fn simulate_single_machine(cfg: &SimConfig, path: RecoveryPath, concurrent: usize) -> f64 {
    let concurrent = concurrent.clamp(1, cfg.leaves_per_machine);
    let waves = cfg.leaves_per_machine.div_ceil(concurrent);
    let per_wave = leaf_restart_secs(cfg, path, concurrent);
    // Overhead within a wave is per-leaf but sequentialized only across
    // waves; the copy itself is the parallel part.
    per_wave * waves as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: f64 = 3600.0;

    #[test]
    fn paper_headline_shm_vs_disk_cluster_rollover() {
        // §1: "The entire cluster upgrade time is now under an hour,
        // rather than lasting 12 hours."
        let cfg = SimConfig::paper_defaults();
        let shm = simulate_rollover(&cfg, RecoveryPath::SharedMemory);
        let disk = simulate_rollover(&cfg, RecoveryPath::Disk);
        assert!(
            shm.total_secs < 1.3 * HOUR,
            "shm rollover {:.2}h",
            shm.total_secs / HOUR
        );
        assert!(
            disk.total_secs > 9.0 * HOUR && disk.total_secs < 14.0 * HOUR,
            "disk rollover {:.2}h",
            disk.total_secs / HOUR
        );
        // Who wins and by what factor: order of magnitude apart.
        assert!(disk.restart_secs / shm.restart_secs > 8.0);
    }

    #[test]
    fn paper_headline_availability() {
        // §1: 93% fully available (disk, weekly 12h rollover) vs 99.5%
        // (shm, ~1h).
        let cfg = SimConfig::paper_defaults();
        let shm = simulate_rollover(&cfg, RecoveryPath::SharedMemory);
        let disk = simulate_rollover(&cfg, RecoveryPath::Disk);
        assert!(
            (0.92..0.95).contains(&disk.full_availability_weekly),
            "disk weekly {:.4}",
            disk.full_availability_weekly
        );
        assert!(
            shm.full_availability_weekly > 0.992,
            "shm weekly {:.4}",
            shm.full_availability_weekly
        );
        // §4.5 / Figure 8: 98% of data available during the rollover.
        assert!((disk.min_availability - 0.98).abs() < 0.005);
        assert!((shm.min_availability - 0.98).abs() < 0.005);
    }

    #[test]
    fn paper_headline_single_machine() {
        let cfg = SimConfig::paper_defaults();
        // §6: "We can restart one Scuba machine in 2-3 minutes using
        // shared memory versus 2-3 hours from disk."
        let shm = simulate_single_machine(&cfg, RecoveryPath::SharedMemory, 1);
        assert!(
            (2.0 * 60.0..5.0 * 60.0).contains(&shm),
            "machine shm restart {:.1} min",
            shm / 60.0
        );
        let disk = simulate_single_machine(&cfg, RecoveryPath::Disk, cfg.leaves_per_machine);
        assert!(
            (1.5 * HOUR..3.2 * HOUR).contains(&disk),
            "machine disk restart {:.2} h",
            disk / HOUR
        );
    }

    #[test]
    fn shutdown_copy_matches_three_to_four_seconds() {
        // §4.3: "the leaf copies its data to shared memory and exits in
        // 3-4 seconds" — one direction of the copy at full bandwidth.
        let cfg = SimConfig::paper_defaults();
        let one_way = cfg.data_per_leaf_bytes as f64 / cfg.mem_bw_machine as f64;
        assert!((3.0..5.0).contains(&one_way), "copy-out {one_way:.2}s");
    }

    #[test]
    fn translation_dominates_disk_recovery() {
        // §1/§6: reading takes 20-25 min per machine; translation brings
        // it to 2.5-3 h.
        let cfg = SimConfig::paper_defaults();
        let machine_bytes = cfg.data_per_leaf_bytes * cfg.leaves_per_machine as u64;
        let read = machine_bytes as f64 / cfg.disk_bw_machine as f64;
        let translate = machine_bytes as f64 / cfg.translate_bw_machine as f64;
        assert!(
            (13.0 * 60.0..26.0 * 60.0).contains(&read),
            "read {:.1} min",
            read / 60.0
        );
        assert!(translate > 4.0 * read, "translate must dominate");
    }

    #[test]
    fn pool_respects_fraction_and_machines() {
        let cfg = SimConfig::paper_defaults();
        let r = simulate_rollover(&cfg, RecoveryPath::SharedMemory);
        // 2% of 800 = 16 concurrent.
        let max_rolling = r.timeline.iter().map(|s| s.rolling).max().unwrap();
        assert_eq!(max_rolling, 16);
        assert_eq!(r.leaves, 800);
        // Timeline partitions the fleet at every instant.
        for s in &r.timeline {
            assert_eq!(s.old + s.rolling + s.new, 800);
        }
        // Ends complete.
        let last = r.timeline.last().unwrap();
        assert_eq!(last.new, 800);
        assert_eq!(last.rolling, 0);
    }

    #[test]
    fn leaves_per_machine_scaling() {
        // §6: running N leaf servers per machine gives ~N× the rollover
        // throughput (N machines' worth of bandwidth active at 2%).
        let mut durations = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let cfg = SimConfig {
                leaves_per_machine: n,
                data_per_leaf_bytes: (120 << 30) / n as u64, // fixed 120 GB/machine
                ..SimConfig::paper_defaults()
            };
            let r = simulate_rollover(&cfg, RecoveryPath::Disk);
            durations.push(r.restart_secs);
        }
        // Monotone improvement, roughly N-fold from 1 to 8.
        assert!(durations.windows(2).all(|w| w[1] < w[0]), "{durations:?}");
        let ratio = durations[0] / durations[3];
        assert!((4.0..16.0).contains(&ratio), "1→8 speedup {ratio:.1}x");
    }

    #[test]
    fn restart_fraction_trades_speed_for_availability() {
        let base = SimConfig::paper_defaults();
        let two = simulate_rollover(&base, RecoveryPath::SharedMemory);
        let ten = simulate_rollover(
            &SimConfig {
                restart_fraction: 0.10,
                ..base
            },
            RecoveryPath::SharedMemory,
        );
        assert!(ten.restart_secs < two.restart_secs);
        assert!(ten.min_availability < two.min_availability);
        assert!((ten.min_availability - 0.90).abs() < 0.005);
    }

    #[test]
    fn concurrency_splits_machine_bandwidth() {
        let cfg = SimConfig::paper_defaults();
        let alone = leaf_restart_secs(&cfg, RecoveryPath::Disk, 1);
        let crowded = leaf_restart_secs(&cfg, RecoveryPath::Disk, 8);
        // 8-way sharing: the copy terms scale 8x; overhead does not.
        assert!(crowded > alone * 6.0 && crowded < alone * 8.0);
    }

    #[test]
    fn mean_availability_integral_tracks_fraction() {
        let cfg = SimConfig::paper_defaults();
        let r = simulate_rollover(&cfg, RecoveryPath::SharedMemory);
        // With the pool almost always full at 2%, the time-weighted mean
        // sits just above the min.
        assert!(r.mean_availability >= r.min_availability);
        assert!(
            (r.mean_availability - 0.98).abs() < 0.01,
            "{}",
            r.mean_availability
        );
    }

    #[test]
    fn data_jitter_spreads_leaf_sizes_but_preserves_totals() {
        let uniform = SimConfig::paper_defaults();
        let jittered = SimConfig {
            data_jitter: 0.4,
            ..SimConfig::paper_defaults()
        };
        // Sizes differ per leaf and are deterministic.
        let a = leaf_data_bytes(&jittered, 3);
        let b = leaf_data_bytes(&jittered, 4);
        assert_ne!(a, b);
        assert_eq!(a, leaf_data_bytes(&jittered, 3));
        // All within the jitter band.
        let base = uniform.data_per_leaf_bytes as f64;
        for id in 0..800 {
            let d = leaf_data_bytes(&jittered, id);
            assert!(d >= base * 0.6 - 1.0 && d <= base * 1.4 + 1.0);
        }
        // Mean size stays near the base, so the rollover duration lands
        // near the uniform case.
        let ru = simulate_rollover(&uniform, RecoveryPath::Disk);
        let rj = simulate_rollover(&jittered, RecoveryPath::Disk);
        let ratio = rj.restart_secs / ru.restart_secs;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
        // Zero jitter reproduces the uniform durations exactly.
        assert_eq!(leaf_data_bytes(&uniform, 42), base);
    }

    #[test]
    fn mean_leaf_duration_reported() {
        let cfg = SimConfig::paper_defaults();
        let r = simulate_rollover(&cfg, RecoveryPath::SharedMemory);
        let expect = leaf_restart_secs(&cfg, RecoveryPath::SharedMemory, 1);
        assert!((r.mean_leaf_secs - expect).abs() < 1e-6);
    }
}
