//! The system-wide rollover (§4.5): restart a small fraction of leaves at
//! a time — at most one per machine — while the rest keep serving.
//!
//! "Typically, we restart 2% of the leaf servers at a time ... The script
//! that issues the shutdown command to each leaf then waits in a loop for
//! the leaf server process to die. Usually, the leaf copies its data to
//! shared memory and exits in 3-4 seconds. However, the loop ensures that
//! we kill the leaf server if it has not shut down after 3 minutes. If
//! the old leaf server is killed, the new leaf server will restart from
//! disk." (§4.3, §4.5)

use std::time::{Duration, Instant};

use scuba_leaf::{RecoveryOutcome, WriterCompat};

use crate::cluster::Cluster;
use crate::dashboard::{Dashboard, DashboardFeed};

/// Rollover policy knobs.
#[derive(Debug, Clone)]
pub struct RolloverConfig {
    /// Fraction of leaves restarted concurrently (the paper's 2%). At
    /// least one leaf per wave.
    pub fraction: f64,
    /// Use the shared-memory path (`false` forces disk recovery, for the
    /// comparison experiments).
    pub use_shm: bool,
    /// Kill a leaf whose clean shutdown exceeds this (the 3-minute loop).
    pub kill_timeout: Duration,
    /// Timestamp stamped on recovered blocks.
    pub now: i64,
    /// Writer-format schedule for the *outgoing* binaries: wave `k` shuts
    /// its leaves down as `old_writers[k % len]`. A rollover is exactly
    /// the moment writer versions mix — the old build writes the image,
    /// the new build reads it — so drills list the formats in production
    /// here and leave the replacements on the current reader.
    pub old_writers: Vec<WriterCompat>,
    /// Trace id stamped on every backup/restore/WAL-replay/hydration span
    /// this rollover causes, so a single query over the telemetry table
    /// reconstructs the whole fleet restart as a per-leaf timeline.
    /// 0 (the default) allocates a fresh id; the report carries it.
    pub trace_id: u64,
}

impl Default for RolloverConfig {
    fn default() -> Self {
        RolloverConfig {
            fraction: 0.02,
            use_shm: true,
            kill_timeout: Duration::from_secs(180),
            now: 0,
            old_writers: vec![WriterCompat::Current],
            trace_id: 0,
        }
    }
}

/// What happened to one leaf during the rollover.
#[derive(Debug)]
pub struct RolloverEvent {
    /// Wave index.
    pub wave: usize,
    /// Machine index.
    pub machine: usize,
    /// Leaf index on the machine.
    pub leaf: usize,
    /// Whether the old process was killed (timeout / failed shutdown).
    pub killed: bool,
    /// Image format the outgoing binary wrote for this leaf.
    pub writer: WriterCompat,
    /// How the replacement recovered.
    pub outcome: RecoveryOutcome,
    /// Wall-clock shutdown + restart duration for this leaf.
    pub duration: Duration,
}

/// Full rollover outcome.
#[derive(Debug)]
pub struct RolloverReport {
    /// Per-leaf events in execution order.
    pub events: Vec<RolloverEvent>,
    /// Number of waves executed.
    pub waves: usize,
    /// Total wall-clock duration.
    pub total_duration: Duration,
    /// Lowest query availability observed during the rollover.
    pub min_availability: f64,
    /// Figure-8 style dashboard rows, one per wave boundary.
    pub dashboard: Dashboard,
    /// The trace id every restart span of this rollover carries — the
    /// key for reconstructing it from the telemetry table.
    pub trace_id: u64,
}

impl RolloverReport {
    /// Leaves that recovered via shared memory.
    pub fn memory_recoveries(&self) -> usize {
        self.events.iter().filter(|e| e.outcome.is_memory()).count()
    }
}

/// Roll the whole cluster to the "new version": wave by wave, restart
/// `fraction` of leaves (at most one per machine per wave), waiting for
/// each wave to be back up before starting the next.
pub fn rollover(cluster: &mut Cluster, config: &RolloverConfig) -> RolloverReport {
    let total = cluster.total_leaves();
    let per_wave = ((total as f64 * config.fraction).ceil() as usize).max(1);
    let leaves_per_machine = cluster.config().leaves_per_machine;

    // Global leaf ids, ordered so consecutive ids land on different
    // machines: wave k restarts leaf k%L of machines spread round-robin.
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(total);
    for l in 0..leaves_per_machine {
        for m in 0..cluster.machines().len() {
            order.push((m, l));
        }
    }

    // One trace id for the whole rollover: the process-wide current trace
    // plus a per-slot override, so spans stay attributed even when several
    // clusters roll in one process (parallel tests).
    let trace_id = if config.trace_id != 0 {
        config.trace_id
    } else {
        scuba_obs::next_trace_id()
    };
    scuba_obs::set_trace_id(trace_id);

    let started = Instant::now();
    let mut events = Vec::with_capacity(total);
    let mut dashboard = Dashboard::new(total);
    // Dashboard rows come from the live leaf metrics, not hand counting.
    let mut feed = DashboardFeed::new(cluster);
    let mut min_availability = 1.0f64;
    let mut wave = 0usize;

    for chunk in order.chunks(per_wave) {
        let writer = config.old_writers[wave % config.old_writers.len().max(1)];
        // Phase 1: shut the wave down (all leaves in a wave are on
        // different machines by construction when per_wave ≤ machines).
        let mut wave_started: Vec<(usize, usize, bool, Instant)> = Vec::new();
        for &(m, l) in chunk {
            let leaf_start = Instant::now();
            let slot = &mut cluster.machines_mut()[m].slots_mut()[l];
            slot.set_trace_id(trace_id);
            if let Some(server) = slot.server_mut() {
                // The outgoing process *is* the old build: it writes its
                // own (possibly older) image format.
                server.set_writer_compat(writer);
            }
            let killed = if config.use_shm {
                match slot.shutdown(config.now) {
                    Ok(_summary) => {
                        // The wait-for-death loop: our in-process shutdown
                        // is synchronous, so "exceeded the timeout" can
                        // only be observed after the fact.
                        leaf_start.elapsed() > config.kill_timeout
                    }
                    Err(_) => {
                        slot.kill();
                        true
                    }
                }
            } else {
                // Disk-comparison mode: no shared-memory copy at all.
                slot.kill();
                false
            };
            if killed {
                // Invalidate any shared memory: recovery must go to disk.
                slot.kill();
            }
            wave_started.push((m, l, killed, leaf_start));
        }

        // Availability dips while the wave is down.
        min_availability = min_availability.min(cluster.availability());
        dashboard.push(feed.sample(cluster, started.elapsed()));

        // Phase 2: start replacements and wait for recovery.
        for (m, l, killed, leaf_start) in wave_started {
            let slot = &mut cluster.machines_mut()[m].slots_mut()[l];
            let outcome = slot
                .start(config.now)
                .expect("replacement process must boot");
            events.push(RolloverEvent {
                wave,
                machine: m,
                leaf: l,
                killed,
                writer,
                outcome,
                duration: leaf_start.elapsed(),
            });
        }
        wave += 1;
    }

    dashboard.push(feed.sample(cluster, started.elapsed()));
    scuba_obs::clear_trace_id();

    RolloverReport {
        events,
        waves: wave,
        total_duration: started.elapsed(),
        min_availability,
        dashboard,
        trace_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::{cleanup, test_cluster};
    use scuba_columnstore::Row;
    use scuba_columnstore::Value;
    use scuba_query::Query;

    fn fill(cluster: &mut Cluster, rows_per_leaf: i64) {
        let lpm = cluster.config().leaves_per_machine;
        for m in 0..cluster.machines().len() {
            for l in 0..lpm {
                let batch: Vec<Row> = (0..rows_per_leaf)
                    .map(|i| Row::at(i).with("v", i))
                    .collect();
                cluster.machines_mut()[m].slots_mut()[l]
                    .server_mut()
                    .unwrap()
                    .add_rows("t", &batch, 0)
                    .unwrap();
            }
        }
    }

    #[test]
    fn shm_rollover_preserves_all_data() {
        let (mut c, dir) = test_cluster(3, 2);
        fill(&mut c, 50);
        let before = c.total_rows();

        let report = rollover(&mut c, &RolloverConfig::default());
        assert_eq!(report.events.len(), 6);
        assert_eq!(report.memory_recoveries(), 6);
        assert_eq!(c.total_rows(), before);
        assert!(c.query(&Query::new("t", 0, 100)).is_complete());
        assert_eq!(
            c.query(&Query::new("t", 0, 100)).totals().unwrap()[0],
            Value::Int(300)
        );
        // One leaf at a time out of 6: availability never below 5/6.
        assert!(report.min_availability >= 5.0 / 6.0 - 1e-9);
        cleanup(&c, &dir);
    }

    #[test]
    fn waves_respect_fraction() {
        let (mut c, dir) = test_cluster(4, 2); // 8 leaves
        fill(&mut c, 5);
        let cfg = RolloverConfig {
            fraction: 0.25, // 2 leaves per wave
            ..Default::default()
        };
        let report = rollover(&mut c, &cfg);
        assert_eq!(report.waves, 4);
        // Waves restart one leaf per machine: check no wave had two leaves
        // of the same machine.
        for w in 0..report.waves {
            let machines: Vec<usize> = report
                .events
                .iter()
                .filter(|e| e.wave == w)
                .map(|e| e.machine)
                .collect();
            let mut dedup = machines.clone();
            dedup.dedup();
            assert_eq!(machines.len(), dedup.len(), "wave {w}: {machines:?}");
        }
        cleanup(&c, &dir);
    }

    #[test]
    fn mixed_writer_rollover_preserves_all_data() {
        // Upgrade drill: consecutive waves shut down as different builds
        // (current, pre-refactor v1, early-TLV v2). Every replacement runs
        // the current reader and must memory-restore every image.
        let (mut c, dir) = test_cluster(3, 2);
        fill(&mut c, 40);
        let before = c.total_rows();

        let cfg = RolloverConfig {
            old_writers: vec![
                WriterCompat::Current,
                WriterCompat::LegacyV1,
                WriterCompat::AgedV2,
            ],
            ..Default::default()
        };
        let report = rollover(&mut c, &cfg);
        assert_eq!(report.events.len(), 6);
        assert_eq!(report.memory_recoveries(), 6);
        // The schedule cycled: both old formats actually rolled.
        for w in [WriterCompat::LegacyV1, WriterCompat::AgedV2] {
            assert!(report.events.iter().any(|e| e.writer == w), "{w:?}");
        }
        assert_eq!(c.total_rows(), before);
        assert!(c.query(&Query::new("t", 0, 100)).is_complete());
        cleanup(&c, &dir);
    }

    #[test]
    fn disk_mode_recovers_from_disk() {
        let (mut c, dir) = test_cluster(2, 2);
        fill(&mut c, 20);
        // Make data durable, as a real cluster continuously does.
        for m in c.machines_mut() {
            for s in m.slots_mut() {
                s.server_mut().unwrap().sync_disk().unwrap();
            }
        }
        let cfg = RolloverConfig {
            use_shm: false,
            ..Default::default()
        };
        let report = rollover(&mut c, &cfg);
        assert_eq!(report.memory_recoveries(), 0);
        assert_eq!(c.total_rows(), 80);
        cleanup(&c, &dir);
    }

    #[test]
    fn feed_rows_match_hand_computation() {
        let (mut c, dir) = test_cluster(2, 2);
        fill(&mut c, 5);
        let total = c.total_leaves();
        let mut feed = DashboardFeed::new(&c);

        let row = feed.sample(&c, Duration::from_secs(0));
        assert_eq!(
            (row.old_version, row.rolling, row.new_version),
            (total, 0, 0)
        );
        assert_eq!(row.availability, c.availability());

        // One leaf down: it shows as rolling, and the metric-derived
        // availability equals the cluster's phase-based computation.
        c.machines_mut()[0].slots_mut()[0].shutdown(0).unwrap();
        let row = feed.sample(&c, Duration::from_secs(1));
        assert_eq!(
            (row.old_version, row.rolling, row.new_version),
            (total - 1, 1, 0)
        );
        assert_eq!(row.availability, c.availability());
        assert!(row.availability < 1.0);

        // Back up: the advanced recovery counter moves it to "new".
        c.machines_mut()[0].slots_mut()[0].start(0).unwrap();
        let row = feed.sample(&c, Duration::from_secs(2));
        assert_eq!(
            (row.old_version, row.rolling, row.new_version),
            (total - 1, 0, 1)
        );
        assert_eq!(row.availability, c.availability());
        assert_eq!(row.availability, 1.0);
        cleanup(&c, &dir);
    }

    #[test]
    fn dashboard_progression() {
        let (mut c, dir) = test_cluster(2, 2);
        fill(&mut c, 5);
        let report = rollover(&mut c, &RolloverConfig::default());
        let rows = report.dashboard.rows();
        assert!(rows.len() >= 2);
        assert_eq!(rows[0].new_version, 0);
        let last = rows.last().unwrap();
        assert_eq!(last.new_version, 4);
        assert_eq!(last.rolling, 0);
        assert_eq!(last.availability, 1.0);
        // Monotonic progress.
        assert!(rows
            .windows(2)
            .all(|w| w[0].new_version <= w[1].new_version));
        cleanup(&c, &dir);
    }
}
