//! Cluster layer for the Scuba fast-restart reproduction: machines running
//! leaf servers, the aggregator query path, the 2%-at-a-time rollover
//! orchestrator, the Figure-8 dashboard, and a calibrated discrete-event
//! simulator for paper-scale numbers.
//!
//! Two levels of fidelity, used by different experiments:
//!
//! * **Real mini-cluster** ([`machine`], [`cluster`], [`mod@rollover`]) — a
//!   handful of machines × leaves with *real* leaf servers: real shared
//!   memory, real disk backups, real queries running through the restart.
//!   Everything in the paper's §4 actually executes.
//! * **Paper-scale simulator** ([`sim`]) — hundreds of servers with 120 GB
//!   machines don't fit a laptop, so rollover duration and availability at
//!   that scale are computed by a pipelined discrete-event model whose
//!   per-byte rates are the paper's (disk ~MB/s shared per machine,
//!   translation the dominant cost, memory at GB/s). See the substitution
//!   table in DESIGN.md and the calibration notes in EXPERIMENTS.md.

pub mod chaos;
pub mod cluster;
pub mod dashboard;
pub mod host;
pub mod hosted;
pub mod machine;
pub mod rollover;
pub mod sim;
pub mod telemetry;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport, WaveRecord};
pub use cluster::{Cluster, ClusterConfig};
pub use dashboard::{Dashboard, DashboardRow};
pub use host::{HostStatus, LeafHost};
pub use hosted::{HostedCluster, HostedRolloverReport};
pub use machine::{LeafSlot, Machine};
pub use rollover::{rollover, RolloverConfig, RolloverEvent, RolloverReport};
pub use sim::{
    leaf_restart_secs, simulate_rollover, simulate_rollover_paths, simulate_single_machine,
    RecoveryPath, SimConfig, SimResult, SimSnapshot,
};
pub use telemetry::{
    metric_by_leaf, restore_ns_by_leaf, QueryDashboardFeed, TelemetryExporter,
    DEFAULT_BUFFER_CAPACITY, TELEMETRY_TABLE,
};
