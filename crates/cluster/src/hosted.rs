//! A cluster of [`LeafHost`]s: every leaf on its own thread, queries
//! fanned out concurrently, and a rollover that runs **while** clients
//! keep querying from other threads — the full §4.5 scenario with real
//! concurrency instead of a single-threaded reenactment.

use scuba_columnstore::Row;
use scuba_ingest::{LeafClient, PlacementState};
use scuba_leaf::{LeafConfig, LeafResult};
use scuba_query::{merge_partials, LeafQueryResult, MergedResult, Query};

use crate::cluster::ClusterConfig;
use crate::host::LeafHost;
use crate::rollover::RolloverConfig;

/// A cluster whose leaves are threads behind request channels.
#[derive(Debug)]
pub struct HostedCluster {
    config: ClusterConfig,
    /// Flattened hosts: machine `m`, leaf `l` lives at `m * L + l`.
    /// `None` while a replacement is being started.
    hosts: Vec<Option<LeafHost>>,
}

/// What a hosted rollover did.
#[derive(Debug)]
pub struct HostedRolloverReport {
    /// Leaves restarted.
    pub restarted: usize,
    /// Of which recovered via shared memory.
    pub memory_recoveries: usize,
    /// Waves executed.
    pub waves: usize,
    /// Wall-clock duration.
    pub duration: std::time::Duration,
}

impl HostedCluster {
    /// Boot all leaves (each on its own thread).
    pub fn new(config: ClusterConfig) -> LeafResult<HostedCluster> {
        let total = config.machines * config.leaves_per_machine;
        let mut hosts = Vec::with_capacity(total);
        for global_id in 0..total {
            let m = global_id / config.leaves_per_machine;
            let l = global_id % config.leaves_per_machine;
            let mut leaf_config = LeafConfig::new(
                global_id as u32,
                &config.shm_prefix,
                config.disk_root.join(format!("m{m}_l{l}")),
            );
            leaf_config.memory_capacity = config.leaf_memory_capacity;
            leaf_config.retention = config.retention;
            hosts.push(Some(LeafHost::fresh(leaf_config)?));
        }
        Ok(HostedCluster { config, hosts })
    }

    /// The construction config.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Total leaf count.
    pub fn total_leaves(&self) -> usize {
        self.hosts.len()
    }

    /// The hosts (None = replacement being started).
    pub fn hosts(&self) -> &[Option<LeafHost>] {
        &self.hosts
    }

    /// Rows across all live leaves (published counters; lock-free).
    pub fn total_rows(&self) -> usize {
        self.hosts
            .iter()
            .flatten()
            .map(|h| h.status().total_rows())
            .sum()
    }

    /// Fraction of leaves currently answering queries.
    pub fn availability(&self) -> f64 {
        let up = self
            .hosts
            .iter()
            .flatten()
            .filter(|h| h.status().accepts_queries())
            .count();
        up as f64 / self.total_leaves() as f64
    }

    /// Fan a query out to every leaf concurrently and merge what comes
    /// back; leaves that are down or recovering just don't contribute
    /// ("Scuba can and does return partial query results", §1).
    pub fn query(&self, query: &Query) -> MergedResult {
        let receivers: Vec<_> = self
            .hosts
            .iter()
            .flatten()
            .filter_map(|h| h.query_async(query).ok())
            .collect();
        let partials: Vec<LeafQueryResult> = receivers
            .into_iter()
            .filter_map(|rx| rx.recv().ok().and_then(Result::ok))
            .collect();
        let mut merged = merge_partials(&query.aggregates, self.total_leaves(), &partials);
        merged.leaves_total = self.total_leaves();
        merged
    }

    /// Tailer-facing clients over the hosts.
    pub fn leaf_clients(&self) -> Vec<HostClient<'_>> {
        self.hosts
            .iter()
            .map(|h| HostClient { host: h.as_ref() })
            .collect()
    }

    /// Roll the whole cluster, wave by wave (at most one leaf per machine
    /// per wave), while other threads keep using [`Self::query`] and the
    /// tailer clients. Shutdown and replacement-start run per leaf; the
    /// wave completes when every replacement is answering queries again.
    pub fn rollover(&mut self, cfg: &RolloverConfig) -> HostedRolloverReport {
        let total = self.total_leaves();
        let lpm = self.config.leaves_per_machine;
        let per_wave = ((total as f64 * cfg.fraction).ceil() as usize).max(1);

        // One leaf per machine per wave: order leaves machine-major.
        let mut order: Vec<usize> = Vec::with_capacity(total);
        for l in 0..lpm {
            for m in 0..self.config.machines {
                order.push(m * lpm + l);
            }
        }

        let started = std::time::Instant::now();
        let mut restarted = 0usize;
        let mut memory_recoveries = 0usize;
        let mut waves = 0usize;

        for wave in order.chunks(per_wave) {
            // Shut the wave down (clean shutdown drains in-flight work).
            for &idx in wave {
                let host = self.hosts[idx].take().expect("leaf present");
                let config = host.config().clone();
                if cfg.use_shm {
                    if host.shutdown(cfg.now).is_err() {
                        // Failed shutdown = the 3-minute kill: disk path.
                    }
                } else {
                    host.kill();
                }
                // Start the replacement immediately; it recovers on its
                // own thread while we start the rest of the wave.
                self.hosts[idx] = Some(LeafHost::start(config, cfg.now));
            }
            // Wait for the wave to come back up before the next wave —
            // the script's wait-loop (§4.3).
            for &idx in wave {
                let host = self.hosts[idx].as_ref().expect("replacement present");
                while !host.status().accepts_queries() && !host.status().is_down() {
                    std::thread::yield_now();
                }
                restarted += 1;
                if host.status().recovered_via_memory() == Some(true) {
                    memory_recoveries += 1;
                }
            }
            waves += 1;
        }
        HostedRolloverReport {
            restarted,
            memory_recoveries,
            waves,
            duration: started.elapsed(),
        }
    }
}

/// [`LeafClient`] adapter over a hosted leaf.
#[derive(Debug)]
pub struct HostClient<'a> {
    host: Option<&'a LeafHost>,
}

impl LeafClient for HostClient<'_> {
    fn placement_state(&self) -> PlacementState {
        self.host
            .map(|h| h.status().placement_state())
            .unwrap_or(PlacementState::Down)
    }

    fn free_memory(&self) -> usize {
        self.host.map(|h| h.status().free_memory()).unwrap_or(0)
    }

    fn deliver(&mut self, table: &str, rows: &[Row]) -> Result<(), String> {
        let host = self.host.ok_or("leaf is being replaced")?;
        let now = rows.iter().map(Row::time).max().unwrap_or(0);
        host.add_rows(table, rows.to_vec(), now)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::table::RetentionLimits;
    use scuba_columnstore::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    static COUNTER: AtomicU32 = AtomicU32::new(0);

    fn hosted(machines: usize, leaves: usize) -> (HostedCluster, Guard) {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let prefix = format!("hc{}x{n}", std::process::id());
        let dir = std::env::temp_dir().join(format!("scuba_hc_{prefix}"));
        let _ = std::fs::remove_dir_all(&dir);
        let c = HostedCluster::new(ClusterConfig {
            machines,
            leaves_per_machine: leaves,
            shm_prefix: prefix.clone(),
            disk_root: dir.clone(),
            leaf_memory_capacity: 1 << 30,
            retention: RetentionLimits::NONE,
        })
        .unwrap();
        (
            c,
            Guard {
                prefix,
                dir,
                total: machines * leaves,
            },
        )
    }

    struct Guard {
        prefix: String,
        dir: PathBuf,
        total: usize,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            for id in 0..self.total {
                if let Ok(ns) = scuba_shmem::ShmNamespace::new(&self.prefix, id as u32) {
                    ns.unlink_all(8);
                }
            }
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn fill(c: &HostedCluster, rows_per_leaf: i64) {
        for host in c.hosts().iter().flatten() {
            host.add_rows(
                "t",
                (0..rows_per_leaf)
                    .map(|i| Row::at(i).with("v", i))
                    .collect(),
                0,
            )
            .unwrap();
        }
    }

    #[test]
    fn hosted_query_fans_out() {
        let (c, _g) = hosted(2, 2);
        fill(&c, 100);
        let r = c.query(&Query::new("t", 0, i64::MAX));
        assert!(r.is_complete());
        assert_eq!(r.totals().unwrap()[0], Value::Int(400));
    }

    #[test]
    fn hosted_rollover_preserves_data() {
        let (mut c, _g) = hosted(2, 2);
        fill(&c, 200);
        let report = c.rollover(&RolloverConfig::default());
        assert_eq!(report.restarted, 4);
        assert_eq!(c.total_rows(), 800);
        let r = c.query(&Query::new("t", 0, i64::MAX));
        assert!(r.is_complete());
        assert_eq!(r.totals().unwrap()[0], Value::Int(800));
    }

    #[test]
    fn queries_run_concurrently_with_rollover() {
        // The paper's whole point, under real concurrency: a client
        // thread hammers the cluster during the rollover; every answer is
        // internally consistent (a valid partial), and the final answer
        // is complete.
        let (c, _g) = hosted(3, 2);
        fill(&c, 300);
        let c = Arc::new(parking_lot::RwLock::new(c));
        let stop = Arc::new(AtomicBool::new(false));

        let qc = Arc::clone(&c);
        let qstop = Arc::clone(&stop);
        let client = std::thread::spawn(move || {
            let q = Query::new("t", 0, i64::MAX);
            let mut observations = Vec::new();
            while !qstop.load(Ordering::Relaxed) {
                let guard = qc.read();
                let r = guard.query(&q);
                drop(guard);
                let count = r.totals().map(|t| t[0].clone()).unwrap_or(Value::Int(0));
                observations.push((r.leaves_responded, count));
            }
            observations
        });

        {
            let mut guard = c.write();
            let report = guard.rollover(&RolloverConfig::default());
            assert_eq!(report.restarted, 6);
        }
        stop.store(true, Ordering::Relaxed);
        let observations = client.join().unwrap();
        assert!(!observations.is_empty());
        for (responded, count) in &observations {
            // Each observation is a consistent partial: responded leaves
            // times 300 rows each.
            assert_eq!(*count, Value::Int(*responded as i64 * 300));
        }
        let guard = c.read();
        let r = guard.query(&Query::new("t", 0, i64::MAX));
        assert_eq!(r.totals().unwrap()[0], Value::Int(1800));
    }

    #[test]
    fn tailer_clients_work_over_hosts() {
        use rand::SeedableRng;
        let (c, _g) = hosted(2, 2);
        let scribe = scuba_ingest::Scribe::new();
        scribe.log_batch("t", (0..1000).map(Row::at));
        let mut tailer = scuba_ingest::Tailer::new(
            &scribe,
            "t",
            scuba_ingest::TailerConfig {
                batch_rows: 100,
                batch_secs: 0,
                max_pair_tries: 4,
            },
        );
        let mut clients = c.leaf_clients();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let delivered = tailer.tick(&scribe, &mut clients, &mut rng, 0);
        assert_eq!(delivered, 1000);
        drop(clients);
        assert_eq!(c.total_rows(), 1000);
    }
}
