//! Scuba-on-scuba at the cluster level: ingest the process's own
//! telemetry into a reserved table and drive the rollover dashboard with
//! vectorized queries over it.
//!
//! [`TelemetryExporter`] runs the `scuba-obs` [`TelemetrySampler`] and
//! batches the resulting events through the normal ingest path into
//! [`TELEMETRY_TABLE`], sharded round-robin across live leaves — so the
//! system's observability survives leaf restarts because it is stored the
//! same way user data is. [`QueryDashboardFeed`] then rebuilds the
//! Figure-8 [`DashboardRow`] entirely from queries against that table,
//! and must agree with the direct-registry [`crate::dashboard::
//! DashboardFeed`] (availability exactly, gauge columns within tolerance).
//!
//! # Shed, never block
//!
//! Telemetry must not backpressure user traffic. The exporter's buffer is
//! bounded: when it is full, or when no live leaf accepts the batch, the
//! excess events are *dropped* and counted in
//! `telemetry_events_dropped_total`. Nothing in this module ever waits.

use std::collections::{BTreeMap, VecDeque};

use scuba_columnstore::Row;
use scuba_obs::{TelemetryEvent, TelemetrySampler};
use scuba_query::{AggSpec, CmpOp, Filter, GroupKey, Query};

use crate::cluster::Cluster;
use crate::dashboard::DashboardRow;

/// The reserved self-telemetry table. The `__scuba_` prefix keeps it out
/// of the user namespace; it is queried like any other table.
pub const TELEMETRY_TABLE: &str = "__scuba_telemetry";

/// Default bounded-buffer capacity (events held between flushes).
pub const DEFAULT_BUFFER_CAPACITY: usize = 16 * 1024;

/// Samples the registry + span ring and ships the events into
/// [`TELEMETRY_TABLE`] through the normal leaf ingest path.
#[derive(Debug)]
pub struct TelemetryExporter {
    sampler: TelemetrySampler,
    buffer: VecDeque<TelemetryEvent>,
    capacity: usize,
    /// Rotates which live leaf gets the first shard of each flush.
    next_leaf: usize,
    dropped: u64,
}

impl Default for TelemetryExporter {
    fn default() -> Self {
        TelemetryExporter::new(DEFAULT_BUFFER_CAPACITY)
    }
}

impl TelemetryExporter {
    /// An exporter whose buffer holds at most `capacity` events.
    pub fn new(capacity: usize) -> TelemetryExporter {
        TelemetryExporter {
            sampler: TelemetrySampler::new(),
            buffer: VecDeque::new(),
            capacity: capacity.max(1),
            next_leaf: 0,
            dropped: 0,
        }
    }

    /// Events currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Events this exporter has shed (buffer overflow or undeliverable
    /// batches) — mirrored in `telemetry_events_dropped_total`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sample the registry and span ring at logical time `ts`, buffering
    /// the events. Returns how many were buffered (excess is shed).
    pub fn collect(&mut self, ts: i64) -> usize {
        self.enqueue(self.sampler.sample(ts))
    }

    /// Buffer pre-built events, shedding (newest first) past capacity.
    pub fn enqueue(&mut self, events: Vec<TelemetryEvent>) -> usize {
        let room = self.capacity.saturating_sub(self.buffer.len());
        let take = room.min(events.len());
        let shed = events.len() - take;
        self.buffer.extend(events.into_iter().take(take));
        if shed > 0 {
            self.shed(shed as u64);
        }
        take
    }

    fn shed(&mut self, n: u64) {
        self.dropped += n;
        scuba_obs::counter!("telemetry_events_dropped_total").add(n);
    }

    /// Ship every buffered event into [`TELEMETRY_TABLE`], round-robin
    /// across the leaves currently accepting ingest. Never blocks and
    /// never fails: a batch no live leaf accepts is shed and counted.
    /// Returns the number of events delivered.
    pub fn flush(&mut self, cluster: &mut Cluster) -> usize {
        if self.buffer.is_empty() {
            return 0;
        }
        let events: Vec<TelemetryEvent> = self.buffer.drain(..).collect();
        // Live leaves, as (machine, slot) coordinates.
        let coords: Vec<(usize, usize)> = cluster
            .machines()
            .iter()
            .enumerate()
            .flat_map(|(m, machine)| {
                machine
                    .slots()
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.phase().accepts_adds())
                    .map(move |(l, _)| (m, l))
            })
            .collect();
        if coords.is_empty() {
            self.shed(events.len() as u64);
            return 0;
        }
        // Shard the batch: event i goes to live leaf (next_leaf + i) % n.
        let n = coords.len();
        let mut batches: Vec<Vec<Row>> = vec![Vec::new(); n];
        for (i, e) in events.iter().enumerate() {
            batches[(self.next_leaf + i) % n].push(event_row(e));
        }
        self.next_leaf = (self.next_leaf + 1) % n;
        let mut delivered = 0usize;
        for ((m, l), rows) in coords.into_iter().zip(batches) {
            if rows.is_empty() {
                continue;
            }
            let count = rows.len();
            let now = rows.iter().map(Row::time).max().unwrap_or(0);
            let ok = cluster.machines_mut()[m].slots_mut()[l]
                .server_mut()
                .map(|s| s.add_rows(TELEMETRY_TABLE, &rows, now).is_ok())
                .unwrap_or(false);
            if ok {
                delivered += count;
            } else {
                // The leaf went away between the liveness scan and the
                // add: shed the shard rather than wait or retry.
                self.shed(count as u64);
            }
        }
        delivered
    }
}

/// One telemetry event as a row of [`TELEMETRY_TABLE`].
fn event_row(e: &TelemetryEvent) -> Row {
    Row::at(e.ts)
        .with("kind", e.kind)
        .with("metric", e.metric.as_str())
        .with("leaf", e.leaf.as_str())
        .with("op", e.op.as_str())
        .with("phase", e.phase.as_str())
        .with("value", e.value)
        .with("trace_id", e.trace_id.min(i64::MAX as u64) as i64)
        .with("outcome", e.outcome.as_str())
}

/// Per-leaf values of one metric at one logical timestamp, read back out
/// of [`TELEMETRY_TABLE`] with a grouped vectorized query.
pub fn metric_by_leaf(
    cluster: &Cluster,
    ts: i64,
    kind: &str,
    metric: &str,
) -> BTreeMap<String, i64> {
    let q = Query::new(TELEMETRY_TABLE, ts, ts + 1)
        .filter(Filter::new("kind", CmpOp::Eq, kind))
        .filter(Filter::new("metric", CmpOp::Eq, metric))
        .group_by("leaf")
        .aggregates(vec![AggSpec::Max("value".into())]);
    let mut out = BTreeMap::new();
    for (key, values) in cluster.query(&q).groups {
        if let GroupKey::Str(leaf) = key {
            out.insert(leaf, value_i64(values.first()));
        }
    }
    out
}

fn value_i64(v: Option<&scuba_columnstore::Value>) -> i64 {
    match v {
        Some(scuba_columnstore::Value::Int(i)) => *i,
        Some(scuba_columnstore::Value::Double(d)) => *d as i64,
        _ => 0,
    }
}

/// The query-driven twin of [`crate::dashboard::DashboardFeed`]: produces
/// the same [`DashboardRow`]s, but every number is read back from
/// [`TELEMETRY_TABLE`] with vectorized queries instead of the live metric
/// registry.
///
/// Each [`sample`](QueryDashboardFeed::sample) call snapshots the
/// registry at a fresh logical timestamp, flushes the events to the
/// leaves that are live *right now*, then queries exactly that one-tick
/// window — so the current snapshot is always fully queryable, even while
/// part of the fleet is down mid-rollover.
#[derive(Debug)]
pub struct QueryDashboardFeed {
    keys: Vec<String>,
    baseline: Vec<u64>,
    next_ts: i64,
}

impl QueryDashboardFeed {
    /// A feed over every leaf in `cluster`, with recovery baselines taken
    /// now — through the telemetry table, like every later read. Create
    /// it (like the registry feed) immediately before a rollover.
    pub fn new(cluster: &mut Cluster, exporter: &mut TelemetryExporter) -> QueryDashboardFeed {
        let keys: Vec<String> = cluster
            .machines()
            .iter()
            .flat_map(|m| m.slots())
            .map(|s| format!("{}:{}", s.config().shm_prefix, s.config().leaf_id))
            .collect();
        let mut feed = QueryDashboardFeed {
            keys,
            baseline: Vec::new(),
            next_ts: 0,
        };
        let ts = feed.snapshot(cluster, exporter);
        let recoveries = metric_by_leaf(cluster, ts, "counter", "leaf_recoveries_total");
        feed.baseline = feed
            .keys
            .iter()
            .map(|k| recoveries.get(k).copied().unwrap_or(0).max(0) as u64)
            .collect();
        feed
    }

    /// Write one registry snapshot into the telemetry table and return
    /// its logical timestamp.
    fn snapshot(&mut self, cluster: &mut Cluster, exporter: &mut TelemetryExporter) -> i64 {
        let ts = self.next_ts;
        self.next_ts += 1;
        exporter.collect(ts);
        exporter.flush(cluster);
        ts
    }

    /// Sample the fleet: snapshot telemetry, then classify every leaf as
    /// old/rolling/new purely from queries over [`TELEMETRY_TABLE`] —
    /// the same classification [`crate::dashboard::DashboardFeed::
    /// sample_inner`] applies to the live registry.
    pub fn sample(
        &mut self,
        cluster: &mut Cluster,
        exporter: &mut TelemetryExporter,
        elapsed: std::time::Duration,
    ) -> DashboardRow {
        let ts = self.snapshot(cluster, exporter);
        let accepting = metric_by_leaf(cluster, ts, "gauge", "leaf_accepting_queries");
        let recoveries = metric_by_leaf(cluster, ts, "counter", "leaf_recoveries_total");
        let phase = metric_by_leaf(cluster, ts, "gauge", "leaf_phase");
        let lag = metric_by_leaf(cluster, ts, "gauge", "leaf_checkpoint_lag_blocks");
        let on_access = metric_by_leaf(cluster, ts, "gauge", "leaf_hydration_on_access_blocks");
        let wal = metric_by_leaf(cluster, ts, "gauge", "leaf_wal_bytes");
        let replay = metric_by_leaf(cluster, ts, "gauge", "leaf_wal_replay_ns");
        let crash = metric_by_leaf(cluster, ts, "counter", "leaf_crash_fast_recoveries_total");

        let hydrating_index = i64::from(scuba_leaf::LeafPhase::Hydrating.index());
        let total = self.keys.len();
        let mut row = DashboardRow {
            elapsed,
            old_version: 0,
            rolling: 0,
            new_version: 0,
            hydrating: 0,
            availability: 1.0,
            checkpoint_lag_blocks: 0,
            wal_bytes: 0,
            wal_replay_ns: 0,
            crash_fast_recoveries: 0,
            on_access_blocks: 0,
        };
        let mut answering = 0usize;
        for (i, key) in self.keys.iter().enumerate() {
            row.checkpoint_lag_blocks += lag.get(key).copied().unwrap_or(0);
            row.on_access_blocks += on_access.get(key).copied().unwrap_or(0);
            row.wal_bytes += wal.get(key).copied().unwrap_or(0);
            row.wal_replay_ns = row.wal_replay_ns.max(replay.get(key).copied().unwrap_or(0));
            row.crash_fast_recoveries += crash.get(key).copied().unwrap_or(0).max(0) as u64;
            // A leaf with no gauge row yet (instrumentation off, or a
            // series never written) defaults to answering-on-old, same as
            // the registry feed's fallback.
            let accepts = accepting.get(key).is_none_or(|v| *v > 0);
            if accepts {
                answering += 1;
            }
            let recovered =
                recoveries.get(key).copied().unwrap_or(0).max(0) as u64 > self.baseline[i];
            if !accepts {
                row.rolling += 1;
            } else if recovered {
                row.new_version += 1;
                if phase.get(key) == Some(&hydrating_index) {
                    row.hydrating += 1;
                }
            } else {
                row.old_version += 1;
            }
        }
        row.availability = if total == 0 {
            1.0
        } else {
            answering as f64 / total as f64
        };
        row
    }
}

/// Reconstruct a rollover's per-leaf restore timeline from the telemetry
/// table: total restore nanoseconds per leaf, from the `restart.phase`
/// spans stamped with `trace_id`. One query — the Figure-5-per-leaf view
/// the tentpole promises.
pub fn restore_ns_by_leaf(cluster: &Cluster, trace_id: u64) -> BTreeMap<String, i64> {
    let q = Query::new(TELEMETRY_TABLE, i64::MIN, i64::MAX)
        .filter(Filter::new("kind", CmpOp::Eq, "span"))
        .filter(Filter::new("metric", CmpOp::Eq, "restart.phase"))
        .filter(Filter::new("op", CmpOp::Eq, "restore"))
        .filter(Filter::new(
            "trace_id",
            CmpOp::Eq,
            trace_id.min(i64::MAX as u64) as i64,
        ))
        .group_by("leaf")
        .aggregates(vec![AggSpec::Sum("value".into())]);
    let mut out = BTreeMap::new();
    for (key, values) in cluster.query(&q).groups {
        if let GroupKey::Str(leaf) = key {
            out.insert(leaf, value_i64(values.first()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::{cleanup, test_cluster};
    use crate::dashboard::DashboardFeed;
    use crate::rollover::{rollover, RolloverConfig};
    use scuba_leaf::RecoveryOutcome;
    use std::time::Duration;

    fn fill(cluster: &mut Cluster, rows_per_leaf: i64) {
        let lpm = cluster.config().leaves_per_machine;
        for m in 0..cluster.machines().len() {
            for l in 0..lpm {
                let batch: Vec<Row> = (0..rows_per_leaf)
                    .map(|i| Row::at(i).with("v", i))
                    .collect();
                cluster.machines_mut()[m].slots_mut()[l]
                    .server_mut()
                    .unwrap()
                    .add_rows("t", &batch, 0)
                    .unwrap();
            }
        }
    }

    /// Gauge columns must agree within ±5% (they are read from the same
    /// snapshot, so in practice exactly).
    fn close(a: i64, b: i64, what: &str) {
        let tol = (a.abs().max(b.abs()) as f64 * 0.05).max(1.0);
        assert!(
            (a - b).abs() as f64 <= tol,
            "{what}: query feed {a} vs registry feed {b}"
        );
    }

    fn assert_rows_agree(q: &DashboardRow, d: &DashboardRow) {
        assert_eq!(
            (q.old_version, q.rolling, q.new_version, q.hydrating),
            (d.old_version, d.rolling, d.new_version, d.hydrating),
            "fleet partition"
        );
        assert_eq!(q.availability, d.availability, "availability");
        close(q.checkpoint_lag_blocks, d.checkpoint_lag_blocks, "lag");
        close(q.wal_bytes, d.wal_bytes, "wal_bytes");
        close(q.wal_replay_ns, d.wal_replay_ns, "wal_replay_ns");
        close(
            q.crash_fast_recoveries as i64,
            d.crash_fast_recoveries as i64,
            "crash_fast_recoveries",
        );
        close(q.on_access_blocks, d.on_access_blocks, "on_access_blocks");
    }

    #[test]
    fn query_dashboard_matches_registry_dashboard_through_a_wave() {
        // Span-draining + registry-reading test: serialize with other
        // ring consumers (the sampler drains the process-global ring).
        let _x = scuba_obs::exclusive();
        scuba_obs::set_enabled(true);
        let (mut c, dir) = test_cluster(2, 2);
        fill(&mut c, 10);

        let mut exporter = TelemetryExporter::default();
        let mut qfeed = QueryDashboardFeed::new(&mut c, &mut exporter);
        let mut dfeed = DashboardFeed::new(&c);

        // All answering on the old version.
        let q0 = qfeed.sample(&mut c, &mut exporter, Duration::from_secs(0));
        let d0 = dfeed.sample(&c, Duration::from_secs(0));
        assert_rows_agree(&q0, &d0);
        assert_eq!((q0.old_version, q0.rolling, q0.new_version), (4, 0, 0));

        // A rollover wave: one leaf down. The wave's telemetry lands on
        // the three live leaves, so the snapshot is fully queryable.
        c.machines_mut()[0].slots_mut()[0].shutdown(0).unwrap();
        let q1 = qfeed.sample(&mut c, &mut exporter, Duration::from_secs(1));
        let d1 = dfeed.sample(&c, Duration::from_secs(1));
        assert_rows_agree(&q1, &d1);
        assert_eq!((q1.old_version, q1.rolling, q1.new_version), (3, 1, 0));
        assert!(q1.availability < 1.0);

        // Replacement up: recovery counter moved past baseline → "new".
        c.machines_mut()[0].slots_mut()[0].start(0).unwrap();
        let q2 = qfeed.sample(&mut c, &mut exporter, Duration::from_secs(2));
        let d2 = dfeed.sample(&c, Duration::from_secs(2));
        assert_rows_agree(&q2, &d2);
        assert_eq!((q2.old_version, q2.rolling, q2.new_version), (3, 0, 1));
        assert_eq!(q2.availability, 1.0);

        assert_eq!(exporter.dropped(), 0, "nothing shed in normal operation");
        cleanup(&c, &dir);
    }

    #[test]
    fn one_query_reconstructs_a_rollover_trace() {
        // Consumes the span ring: serialize with other ring consumers and
        // widen the ring so parallel tests' spans can't evict ours.
        let _x = scuba_obs::exclusive();
        scuba_obs::set_enabled(true);
        scuba_obs::set_span_capacity(8192);
        let (mut c, dir) = test_cluster(3, 2);
        fill(&mut c, 40);

        let cfg = RolloverConfig::default();
        let report = rollover(&mut c, &cfg);
        assert!(report.trace_id != 0);
        assert_eq!(report.memory_recoveries(), 6);

        // Ship the rollover's spans into the telemetry table, then ask it
        // one question: restore nanoseconds per leaf for this trace.
        let mut exporter = TelemetryExporter::default();
        exporter.collect(100);
        exporter.flush(&mut c);
        let by_leaf = restore_ns_by_leaf(&c, report.trace_id);

        let prefix = &c.config().shm_prefix;
        let lpm = c.config().leaves_per_machine;
        for e in &report.events {
            let key = format!("{prefix}:{}", e.machine * lpm + e.leaf);
            let RecoveryOutcome::Memory(ref r) = e.outcome else {
                panic!("expected a full memory restore, got {:?}", e.outcome);
            };
            let want = r.phases.phase_sum().as_nanos() as i64;
            let got = by_leaf.get(&key).copied().unwrap_or(0);
            // The spans carry the report's own phase durations, so the
            // reconstruction must land within ±5% of the RestartReport.
            let tol = (want as f64 * 0.05).max(1000.0);
            assert!(
                (got - want).abs() as f64 <= tol,
                "{key}: reconstructed {got} ns vs report {want} ns"
            );
        }
        assert_eq!(by_leaf.len(), report.events.len(), "every leaf traced");
        scuba_obs::set_span_capacity(256);
        cleanup(&c, &dir);
    }

    #[test]
    fn exporter_sheds_and_never_blocks() {
        let _x = scuba_obs::exclusive();
        scuba_obs::set_enabled(true);
        let (mut c, dir) = test_cluster(1, 2);

        // Saturation: a buffer far smaller than one registry snapshot.
        let mut exporter = TelemetryExporter::new(8);
        let buffered = exporter.collect(0);
        assert!(buffered <= 8);
        assert!(
            exporter.dropped() > 0,
            "a full buffer must shed, not grow or block"
        );
        let before = exporter.dropped();
        exporter.collect(1); // buffer already full: everything sheds
        assert_eq!(exporter.buffered(), 8);
        assert!(exporter.dropped() > before);

        // Whole fleet down: flush sheds the batch instead of waiting.
        c.machines_mut()[0].slots_mut()[0].kill();
        c.machines_mut()[0].slots_mut()[1].kill();
        let before = exporter.dropped();
        assert_eq!(exporter.flush(&mut c), 0);
        assert_eq!(exporter.buffered(), 0);
        assert_eq!(exporter.dropped(), before + 8);
        // The shed path is itself observable.
        assert!(
            scuba_obs::counter_value("telemetry_events_dropped_total").unwrap_or(0)
                >= exporter.dropped()
        );
        cleanup(&c, &dir);
    }
}
