//! Deterministic synthetic service-log workloads.
//!
//! The paper's intro names Scuba's workhorse use cases: "code regression
//! analysis, bug report monitoring, ads revenue monitoring, and
//! performance debugging" (§1). Each [`WorkloadKind`] synthesizes rows
//! shaped like one of those: categorical columns with few distinct values
//! (dictionary-friendly), near-monotonic timestamps (delta-friendly), and
//! heavy-tailed numeric columns. All generation is seeded, so experiments
//! are reproducible.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scuba_columnstore::Row;

/// Which service-log shape to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// User-facing error events: severity, product, error message, count.
    ErrorLogs,
    /// Request logs: endpoint, status, latency, host.
    Requests,
    /// Ads revenue metrics: campaign, impressions, revenue.
    AdsMetrics,
}

impl WorkloadKind {
    /// Conventional table name for this workload.
    pub fn table_name(self) -> &'static str {
        match self {
            WorkloadKind::ErrorLogs => "error_logs",
            WorkloadKind::Requests => "requests",
            WorkloadKind::AdsMetrics => "ads_metrics",
        }
    }
}

/// A seeded row generator.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which shape to generate.
    pub kind: WorkloadKind,
    /// RNG seed (same seed ⇒ same rows).
    pub seed: u64,
    /// First event timestamp.
    pub start_time: i64,
    /// Mean events per second (timestamps advance ~1/rate per row).
    pub events_per_sec: u32,
}

impl WorkloadSpec {
    /// A spec with conventional defaults.
    pub fn new(kind: WorkloadKind, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            seed,
            start_time: 1_700_000_000,
            events_per_sec: 1000,
        }
    }

    /// Generate `n` rows.
    pub fn rows(&self, n: usize) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut time = self.start_time;
        let mut ticker = 0u32;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // Advance the clock roughly every events_per_sec rows, so the
            // time column is the near-monotonic stream §2.1 describes.
            ticker += 1;
            if ticker >= self.events_per_sec {
                ticker = 0;
                time += 1;
            }
            out.push(self.row_at(&mut rng, time));
        }
        out
    }

    fn row_at(&self, rng: &mut StdRng, time: i64) -> Row {
        match self.kind {
            WorkloadKind::ErrorLogs => {
                const SEVERITIES: [&str; 4] = ["fatal", "error", "warn", "info"];
                const PRODUCTS: [&str; 6] =
                    ["web", "android", "ios", "ads", "messenger", "graph_api"];
                // Severity is skewed: infos dominate, fatals are rare.
                let sev_idx = match rng.gen_range(0..100) {
                    0 => 0,
                    1..=9 => 1,
                    10..=34 => 2,
                    _ => 3,
                };
                let mut row = Row::at(time)
                    .with("severity", SEVERITIES[sev_idx])
                    .with("product", PRODUCTS[zipfish(rng, PRODUCTS.len())])
                    .with(
                        "message",
                        format!("err_{:03}: operation failed", zipfish(rng, 200)),
                    )
                    .with("count", rng.gen_range(1..50i64));
                if rng.gen_bool(0.3) {
                    row.set("stack_hash", rng.gen_range(0..5000i64));
                }
                // Tag sets: a genuinely Scuba-flavored column type.
                const TAGS: [&str; 6] = ["canary", "beta", "employee", "retry", "cold", "edge"];
                let n_tags = rng.gen_range(0..4usize);
                if n_tags > 0 {
                    let tags: Vec<&str> = (0..n_tags)
                        .map(|_| TAGS[rng.gen_range(0..TAGS.len())])
                        .collect();
                    row.set("tags", scuba_columnstore::Value::set(tags));
                }
                row
            }
            WorkloadKind::Requests => {
                const ENDPOINTS: [&str; 8] = [
                    "/home",
                    "/feed",
                    "/profile",
                    "/api/graph",
                    "/api/ads",
                    "/search",
                    "/video",
                    "/upload",
                ];
                let status: i64 = match rng.gen_range(0..100) {
                    0..=89 => 200,
                    90..=94 => 302,
                    95..=97 => 404,
                    _ => 500,
                };
                // Lognormal-ish latency tail.
                let base: f64 = rng.gen_range(1.0f64..4.0);
                let latency = (base.exp() * rng.gen_range(0.5..2.0) * 10.0 * 100.0).round() / 100.0;
                Row::at(time)
                    .with("endpoint", ENDPOINTS[zipfish(rng, ENDPOINTS.len())])
                    .with("status", status)
                    .with("latency_ms", latency)
                    .with("host", format!("web{:03}", zipfish(rng, 100)))
            }
            WorkloadKind::AdsMetrics => {
                let campaign = zipfish(rng, 50) as i64;
                let impressions = rng.gen_range(1..1000i64);
                let ctr: f64 = rng.gen_range(0.001..0.05);
                Row::at(time)
                    .with("campaign_id", campaign)
                    .with("region", ["us", "eu", "apac", "latam"][zipfish(rng, 4)])
                    .with("impressions", impressions)
                    .with(
                        "revenue",
                        (impressions as f64 * ctr * 100.0).round() / 100.0,
                    )
            }
        }
    }
}

/// A cheap zipf-ish index in `0..n`: low indexes much more likely.
fn zipfish(rng: &mut StdRng, n: usize) -> usize {
    let u = Uniform::new(0.0f64, 1.0).sample(rng);
    let idx = (u * u * n as f64) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadSpec::new(WorkloadKind::Requests, 7).rows(100);
        let b = WorkloadSpec::new(WorkloadKind::Requests, 7).rows(100);
        assert_eq!(a, b);
        let c = WorkloadSpec::new(WorkloadKind::Requests, 8).rows(100);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_near_monotonic() {
        let spec = WorkloadSpec {
            events_per_sec: 10,
            ..WorkloadSpec::new(WorkloadKind::ErrorLogs, 1)
        };
        let rows = spec.rows(100);
        assert!(rows.windows(2).all(|w| w[0].time() <= w[1].time()));
        assert_eq!(rows.last().unwrap().time() - rows[0].time(), 10);
    }

    #[test]
    fn error_logs_shape() {
        let rows = WorkloadSpec::new(WorkloadKind::ErrorLogs, 2).rows(1000);
        for r in &rows {
            assert!(r.get("severity").is_some());
            assert!(r.get("product").is_some());
            assert!(r.get("count").and_then(|v| v.as_int()).is_some());
        }
        // Severity skew: info should dominate fatal.
        let count = |sev: &str| {
            rows.iter()
                .filter(|r| r.get("severity").and_then(|v| v.as_str()) == Some(sev))
                .count()
        };
        assert!(count("info") > count("fatal") * 5);
        // Optional column really is optional.
        assert!(rows.iter().any(|r| r.get("stack_hash").is_none()));
        assert!(rows.iter().any(|r| r.get("stack_hash").is_some()));
        // Tag sets appear and are normalized.
        let tagged = rows
            .iter()
            .filter_map(|r| r.get("tags"))
            .collect::<Vec<_>>();
        assert!(!tagged.is_empty());
        for t in tagged {
            let set = t.as_set().unwrap();
            assert!(set.windows(2).all(|w| w[0] < w[1]), "unsorted set {set:?}");
        }
    }

    #[test]
    fn requests_shape() {
        let rows = WorkloadSpec::new(WorkloadKind::Requests, 3).rows(1000);
        let ok = rows
            .iter()
            .filter(|r| r.get("status").and_then(|v| v.as_int()) == Some(200))
            .count();
        assert!(ok > 800, "expected mostly 200s, got {ok}");
        assert!(rows
            .iter()
            .all(|r| r.get("latency_ms").and_then(|v| v.as_double()).unwrap() > 0.0));
    }

    #[test]
    fn ads_metrics_shape() {
        let rows = WorkloadSpec::new(WorkloadKind::AdsMetrics, 4).rows(500);
        for r in &rows {
            let revenue = r.get("revenue").and_then(|v| v.as_double()).unwrap();
            assert!(revenue >= 0.0);
            assert!(r.get("campaign_id").and_then(|v| v.as_int()).unwrap() < 50);
        }
    }

    #[test]
    fn table_names() {
        assert_eq!(WorkloadKind::ErrorLogs.table_name(), "error_logs");
        assert_eq!(WorkloadKind::Requests.table_name(), "requests");
        assert_eq!(WorkloadKind::AdsMetrics.table_name(), "ads_metrics");
    }

    #[test]
    fn categorical_columns_compress_well() {
        // The workload's purpose: feed the compression experiment. Check
        // the dictionary-friendliness end to end.
        use scuba_columnstore::{RowBlockColumn, Table};
        let rows = WorkloadSpec::new(WorkloadKind::Requests, 5).rows(5000);
        let mut t = Table::new("requests", 0);
        for r in &rows {
            t.append(r, 0).unwrap();
        }
        t.seal(0).unwrap();
        let block = &t.blocks()[0];
        let endpoint: &RowBlockColumn = block.column("endpoint").unwrap();
        let raw: usize = rows
            .iter()
            .map(|r| r.get("endpoint").unwrap().heap_size())
            .sum();
        assert!(
            endpoint.len_bytes() * 8 < raw,
            "endpoint column {} vs raw {}",
            endpoint.len_bytes(),
            raw
        );
    }
}
