//! Ingestion pipeline for the Scuba fast-restart reproduction.
//!
//! Figure 1: "Data flows from log calls in Facebook products and services
//! into Scribe. Scuba 'tailer' processes pull the data for each table out
//! of Scribe and send it into Scuba. Every N rows or t seconds, the
//! tailer chooses a new Scuba leaf server and sends it a batch of rows."
//!
//! * [`scribe`] — an in-process stand-in for the distributed Scribe
//!   message bus: per-category row logs with independent consumer offsets
//!   (see the substitution table in DESIGN.md).
//! * [`tailer`] — the batching and two-random-choice placement policy of
//!   §2, including the retry-then-send-to-a-restarting-server fallback.
//! * [`workload`] — deterministic synthetic service-log generators shaped
//!   like the workloads the paper's introduction names (error monitoring,
//!   request logging, ads revenue metrics).

pub mod scribe;
pub mod tailer;
pub mod workload;

pub use scribe::{Scribe, ScribeCursor};
pub use tailer::{LeafClient, PlacementState, Tailer, TailerConfig, TailerStats};
pub use workload::{WorkloadKind, WorkloadSpec};
