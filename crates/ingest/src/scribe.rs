//! An in-process Scribe: per-category append-only row logs with
//! independent consumer cursors.
//!
//! The real Scribe (the paper's reference 3) is a distributed messaging system; what the tailer
//! policy needs from it is just "rows for table X arrive in order and can
//! be consumed from an offset", which this provides (and which keeps the
//! ingestion experiments deterministic).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use scuba_columnstore::Row;

/// Shared, thread-safe message bus.
#[derive(Debug, Clone, Default)]
pub struct Scribe {
    inner: Arc<Mutex<HashMap<String, Vec<Row>>>>,
}

/// A consumer's position in one category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScribeCursor {
    /// Category (== table) this cursor reads.
    pub category: String,
    /// Next offset to read.
    pub offset: usize,
}

impl Scribe {
    /// A fresh, empty bus.
    pub fn new() -> Scribe {
        Scribe::default()
    }

    /// Append one row to a category.
    pub fn log(&self, category: &str, row: Row) {
        self.inner
            .lock()
            .entry(category.to_owned())
            .or_default()
            .push(row);
    }

    /// Append many rows to a category.
    pub fn log_batch(&self, category: &str, rows: impl IntoIterator<Item = Row>) {
        self.inner
            .lock()
            .entry(category.to_owned())
            .or_default()
            .extend(rows);
    }

    /// Number of rows ever logged to a category.
    pub fn len(&self, category: &str) -> usize {
        self.inner.lock().get(category).map_or(0, Vec::len)
    }

    /// True if the category has no rows.
    pub fn is_empty(&self, category: &str) -> bool {
        self.len(category) == 0
    }

    /// Categories with at least one row.
    pub fn categories(&self) -> Vec<String> {
        let mut cats: Vec<String> = self.inner.lock().keys().cloned().collect();
        cats.sort();
        cats
    }

    /// Create a cursor at the start of a category.
    pub fn cursor(&self, category: &str) -> ScribeCursor {
        ScribeCursor {
            category: category.to_owned(),
            offset: 0,
        }
    }

    /// Read up to `max` rows at the cursor, advancing it.
    pub fn poll(&self, cursor: &mut ScribeCursor, max: usize) -> Vec<Row> {
        let guard = self.inner.lock();
        let Some(log) = guard.get(&cursor.category) else {
            return Vec::new();
        };
        let end = (cursor.offset + max).min(log.len());
        let rows = log[cursor.offset..end].to_vec();
        cursor.offset = end;
        rows
    }

    /// Rows available past the cursor without consuming them.
    pub fn backlog(&self, cursor: &ScribeCursor) -> usize {
        self.len(&cursor.category).saturating_sub(cursor.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_poll_in_order() {
        let s = Scribe::new();
        for i in 0..10 {
            s.log("t", Row::at(i));
        }
        let mut c = s.cursor("t");
        let batch = s.poll(&mut c, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].time(), 0);
        let batch = s.poll(&mut c, 100);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch[5].time(), 9);
        assert!(s.poll(&mut c, 10).is_empty());
    }

    #[test]
    fn independent_cursors() {
        let s = Scribe::new();
        s.log_batch("t", (0..5).map(Row::at));
        let mut a = s.cursor("t");
        let mut b = s.cursor("t");
        s.poll(&mut a, 3);
        assert_eq!(s.backlog(&a), 2);
        assert_eq!(s.backlog(&b), 5);
        assert_eq!(s.poll(&mut b, 10).len(), 5);
    }

    #[test]
    fn categories_are_separate() {
        let s = Scribe::new();
        s.log("a", Row::at(1));
        s.log("b", Row::at(2));
        s.log("b", Row::at(3));
        assert_eq!(s.len("a"), 1);
        assert_eq!(s.len("b"), 2);
        assert_eq!(s.categories(), vec!["a", "b"]);
        assert!(s.is_empty("missing"));
    }

    #[test]
    fn late_rows_visible_to_existing_cursor() {
        let s = Scribe::new();
        let mut c = s.cursor("t");
        assert!(s.poll(&mut c, 10).is_empty());
        s.log("t", Row::at(7));
        assert_eq!(s.poll(&mut c, 10).len(), 1);
    }

    #[test]
    fn clone_shares_the_bus() {
        let s = Scribe::new();
        let s2 = s.clone();
        s.log("t", Row::at(1));
        assert_eq!(s2.len("t"), 1);
    }
}
