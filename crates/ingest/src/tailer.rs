//! Tailers: batching and the two-random-choice placement policy (§2).
//!
//! "Every N rows or t seconds, the tailer chooses a new Scuba leaf server
//! and sends it a batch of rows. How does it choose a server? It picks two
//! servers randomly and asks them both for their current state and how
//! much free memory they have. If both are alive, it sends the data to
//! the server with more free memory. If only one is alive, that server
//! gets the data. If neither server is alive, the tailer will try two
//! more servers until it finds one that is alive or (after enough tries)
//! sends the data to a restarting server."

use rand::seq::SliceRandom;
use rand::Rng;
use scuba_columnstore::Row;

use crate::scribe::{Scribe, ScribeCursor};

/// What a leaf reports to a tailer when probed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementState {
    /// Fully serving: preferred target.
    Alive,
    /// In disk recovery: accepts adds, used only as a last resort.
    Restarting,
    /// Unreachable (shutting down, copying, or gone).
    Down,
}

/// The tailer's view of a leaf server. The cluster crate implements this
/// for real leaf servers; tests use stubs.
pub trait LeafClient {
    /// Current placement state.
    fn placement_state(&self) -> PlacementState;
    /// Free memory in bytes (meaningful when alive).
    fn free_memory(&self) -> usize;
    /// Deliver a batch. Errors count as a failed delivery; the tailer
    /// will retry the rows later.
    fn deliver(&mut self, table: &str, rows: &[Row]) -> Result<(), String>;
}

/// Batching configuration: "every N rows or t seconds".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailerConfig {
    /// Flush when this many rows are pending (the "N rows" trigger).
    pub batch_rows: usize,
    /// Flush when the oldest pending row is this old (the "t seconds"
    /// trigger), in seconds of the caller's clock.
    pub batch_secs: i64,
    /// How many random *pairs* to probe before falling back to a
    /// restarting server.
    pub max_pair_tries: usize,
}

impl Default for TailerConfig {
    fn default() -> Self {
        TailerConfig {
            batch_rows: 1000,
            batch_secs: 5,
            max_pair_tries: 3,
        }
    }
}

/// Delivery statistics, used by the ingest-balance experiment (E12).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TailerStats {
    /// Batches delivered.
    pub batches_sent: usize,
    /// Rows delivered.
    pub rows_sent: u64,
    /// Batches that went to a restarting leaf (last resort).
    pub sent_to_restarting: usize,
    /// Flush attempts where no leaf could take the batch (rows kept).
    pub undeliverable: usize,
    /// Per-leaf delivered row counts (indexed like the leaf slice).
    pub per_leaf_rows: Vec<u64>,
}

/// One tailer: pulls a single table's rows out of Scribe and pushes
/// batches into leaves.
#[derive(Debug)]
pub struct Tailer {
    table: String,
    cursor: ScribeCursor,
    config: TailerConfig,
    pending: Vec<Row>,
    /// Caller-clock time at which the oldest pending row was pulled.
    pending_since: Option<i64>,
    stats: TailerStats,
}

impl Tailer {
    /// Create a tailer for one table/category.
    pub fn new(scribe: &Scribe, table: impl Into<String>, config: TailerConfig) -> Tailer {
        let table = table.into();
        Tailer {
            cursor: scribe.cursor(&table),
            table,
            config,
            pending: Vec::new(),
            pending_since: None,
            stats: TailerStats::default(),
        }
    }

    /// The table this tailer feeds.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> &TailerStats {
        &self.stats
    }

    /// Rows pulled from Scribe but not yet delivered.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Pull new rows from Scribe and flush batches per the N-rows /
    /// t-seconds policy. `now` is the caller's clock. Returns the number
    /// of rows delivered this tick.
    pub fn tick<L: LeafClient>(
        &mut self,
        scribe: &Scribe,
        leaves: &mut [L],
        rng: &mut impl Rng,
        now: i64,
    ) -> u64 {
        // Pull everything available (bounded per tick to stay responsive).
        let new_rows = scribe.poll(&mut self.cursor, 100_000);
        if !new_rows.is_empty() && self.pending.is_empty() {
            self.pending_since = Some(now);
        }
        self.pending.extend(new_rows);

        let mut delivered = 0u64;
        while self.should_flush(now) {
            let take = self.pending.len().min(self.config.batch_rows);
            let batch: Vec<Row> = self.pending.drain(..take).collect();
            match self.deliver_batch(&batch, leaves, rng) {
                Ok(()) => {
                    delivered += batch.len() as u64;
                    self.pending_since = if self.pending.is_empty() {
                        None
                    } else {
                        Some(now)
                    };
                }
                Err(()) => {
                    // Put the rows back in order and stop for this tick.
                    self.stats.undeliverable += 1;
                    let mut rest = std::mem::take(&mut self.pending);
                    self.pending = batch;
                    self.pending.append(&mut rest);
                    break;
                }
            }
        }
        delivered
    }

    fn should_flush(&self, now: i64) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        if self.pending.len() >= self.config.batch_rows {
            return true;
        }
        match self.pending_since {
            Some(since) => now - since >= self.config.batch_secs,
            None => false,
        }
    }

    /// The §2 placement policy. Ok(()) if delivered somewhere.
    fn deliver_batch<L: LeafClient>(
        &mut self,
        batch: &[Row],
        leaves: &mut [L],
        rng: &mut impl Rng,
    ) -> Result<(), ()> {
        if leaves.is_empty() {
            return Err(());
        }
        let mut indexes: Vec<usize> = (0..leaves.len()).collect();
        indexes.shuffle(rng);

        // Probe pairs: "picks two servers randomly and asks them both".
        let pairs = indexes.chunks(2).take(self.config.max_pair_tries);
        for pair in pairs {
            let alive: Vec<usize> = pair
                .iter()
                .copied()
                .filter(|&i| leaves[i].placement_state() == PlacementState::Alive)
                .collect();
            let target = match alive.as_slice() {
                [] => continue, // "the tailer will try two more servers"
                [one] => Some(*one),
                // "sends the data to the server with more free memory"
                many => many
                    .iter()
                    .copied()
                    .max_by_key(|&i| leaves[i].free_memory()),
            };
            if let Some(i) = target {
                if self.try_send(i, batch, leaves) {
                    return Ok(());
                }
            }
        }
        // "(after enough tries) sends the data to a restarting server".
        if let Some(&i) = indexes
            .iter()
            .find(|&&i| leaves[i].placement_state() == PlacementState::Restarting)
        {
            if self.try_send(i, batch, leaves) {
                self.stats.sent_to_restarting += 1;
                return Ok(());
            }
        }
        Err(())
    }

    fn try_send<L: LeafClient>(&mut self, index: usize, batch: &[Row], leaves: &mut [L]) -> bool {
        if leaves[index].deliver(&self.table, batch).is_err() {
            return false;
        }
        self.stats.batches_sent += 1;
        self.stats.rows_sent += batch.len() as u64;
        if self.stats.per_leaf_rows.len() < leaves.len() {
            self.stats.per_leaf_rows.resize(leaves.len(), 0);
        }
        self.stats.per_leaf_rows[index] += batch.len() as u64;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Leaf stub with scriptable state and memory.
    struct StubLeaf {
        state: PlacementState,
        free: usize,
        received: Vec<(String, usize)>,
        fail_delivery: bool,
    }

    impl StubLeaf {
        fn alive(free: usize) -> StubLeaf {
            StubLeaf {
                state: PlacementState::Alive,
                free,
                received: Vec::new(),
                fail_delivery: false,
            }
        }
        fn rows_received(&self) -> usize {
            self.received.iter().map(|(_, n)| n).sum()
        }
    }

    impl LeafClient for StubLeaf {
        fn placement_state(&self) -> PlacementState {
            self.state
        }
        fn free_memory(&self) -> usize {
            self.free
        }
        fn deliver(&mut self, table: &str, rows: &[Row]) -> Result<(), String> {
            if self.fail_delivery {
                return Err("injected failure".to_owned());
            }
            self.received.push((table.to_owned(), rows.len()));
            self.free = self.free.saturating_sub(rows.len() * 100);
            Ok(())
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn fill_scribe(s: &Scribe, n: i64) {
        s.log_batch("t", (0..n).map(Row::at));
    }

    #[test]
    fn batches_flush_at_row_threshold() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 2500);
        let mut leaves = vec![StubLeaf::alive(1 << 30), StubLeaf::alive(1 << 30)];
        let cfg = TailerConfig {
            batch_rows: 1000,
            batch_secs: 1000,
            max_pair_tries: 3,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        let delivered = t.tick(&scribe.clone(), &mut leaves, &mut rng(), 0);
        // Two full batches go; 500 remain pending (no time trigger yet).
        assert_eq!(delivered, 2000);
        assert_eq!(t.pending_rows(), 500);
        assert_eq!(t.stats().batches_sent, 2);
    }

    #[test]
    fn time_trigger_flushes_partial_batch() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 10);
        let mut leaves = vec![StubLeaf::alive(1 << 30)];
        let cfg = TailerConfig {
            batch_rows: 1000,
            batch_secs: 5,
            max_pair_tries: 3,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 0), 0); // too fresh
        assert_eq!(t.pending_rows(), 10);
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 6), 10); // aged out
        assert_eq!(t.pending_rows(), 0);
    }

    #[test]
    fn prefers_leaf_with_more_free_memory() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 1000);
        let mut leaves = vec![StubLeaf::alive(100), StubLeaf::alive(1 << 30)];
        let cfg = TailerConfig {
            batch_rows: 1000,
            batch_secs: 0,
            max_pair_tries: 3,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        t.tick(&scribe, &mut leaves, &mut rng(), 0);
        assert_eq!(leaves[1].rows_received(), 1000);
        assert_eq!(leaves[0].rows_received(), 0);
    }

    #[test]
    fn only_alive_leaf_gets_data() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 100);
        let mut leaves = vec![
            StubLeaf {
                state: PlacementState::Down,
                ..StubLeaf::alive(1 << 40)
            },
            StubLeaf::alive(1),
        ];
        let cfg = TailerConfig {
            batch_rows: 100,
            batch_secs: 0,
            max_pair_tries: 3,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        t.tick(&scribe, &mut leaves, &mut rng(), 0);
        assert_eq!(leaves[1].rows_received(), 100);
    }

    #[test]
    fn falls_back_to_restarting_leaf() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 50);
        let mut leaves = vec![
            StubLeaf {
                state: PlacementState::Down,
                ..StubLeaf::alive(0)
            },
            StubLeaf {
                state: PlacementState::Restarting,
                ..StubLeaf::alive(0)
            },
        ];
        let cfg = TailerConfig {
            batch_rows: 50,
            batch_secs: 0,
            max_pair_tries: 2,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        t.tick(&scribe, &mut leaves, &mut rng(), 0);
        assert_eq!(leaves[1].rows_received(), 50);
        assert_eq!(t.stats().sent_to_restarting, 1);
    }

    #[test]
    fn undeliverable_rows_are_retained_in_order() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 30);
        let mut leaves = vec![StubLeaf {
            state: PlacementState::Down,
            ..StubLeaf::alive(0)
        }];
        let cfg = TailerConfig {
            batch_rows: 10,
            batch_secs: 0,
            max_pair_tries: 1,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 0), 0);
        assert_eq!(t.pending_rows(), 30);
        assert_eq!(t.stats().undeliverable, 1);
        // Leaf comes back: everything flows, still in order.
        leaves[0].state = PlacementState::Alive;
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 0), 30);
        assert_eq!(leaves[0].rows_received(), 30);
    }

    #[test]
    fn failed_delivery_retries_later() {
        let scribe = Scribe::new();
        fill_scribe(&scribe, 10);
        let mut leaves = vec![StubLeaf {
            fail_delivery: true,
            ..StubLeaf::alive(1 << 30)
        }];
        let cfg = TailerConfig {
            batch_rows: 10,
            batch_secs: 0,
            max_pair_tries: 1,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 0), 0);
        leaves[0].fail_delivery = false;
        assert_eq!(t.tick(&scribe, &mut leaves, &mut rng(), 1), 10);
    }

    #[test]
    fn two_choice_balances_load() {
        // E12 shape check at unit scale: with power-of-two-choices, leaf
        // fill stays much tighter than proportional random would allow.
        let scribe = Scribe::new();
        fill_scribe(&scribe, 40_000);
        let mut leaves: Vec<StubLeaf> = (0..8).map(|_| StubLeaf::alive(1 << 30)).collect();
        let cfg = TailerConfig {
            batch_rows: 100,
            batch_secs: 0,
            max_pair_tries: 4,
        };
        let mut t = Tailer::new(&scribe, "t", cfg);
        t.tick(&scribe, &mut leaves, &mut rng(), 0);
        let counts: Vec<usize> = leaves.iter().map(StubLeaf::rows_received).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 40_000);
        assert!(max - min <= 40_000 / 8, "imbalance too high: {counts:?}");
    }
}
