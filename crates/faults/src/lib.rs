//! Deterministic fault injection for the restart protocol.
//!
//! The paper's protocol is a chain of "what if we die *here*?" arguments:
//! between writing segments and setting the valid bit, between clearing
//! the valid bit and consuming the data, mid-chunk, mid-sync. This crate
//! lets tests stand on each of those points deliberately. Production paths
//! call [`check`] at named **sites**; tests arm a site with a **plan**
//! (what to do, and on which hit) and the next matching call fails there.
//!
//! # Zero cost when disabled
//!
//! The whole registry sits behind one `AtomicU8`. When no site is armed —
//! every production run — [`check`] is a single relaxed load and a
//! predictable branch; no lock, no hash, no string work. The benchmarks
//! (`benches/shutdown.rs`, `benches/restart_time.rs`) run with the
//! registry disarmed and see exactly that fast path.
//!
//! # Plans
//!
//! A plan is `EFFECT[TRIGGER]`:
//!
//! | effect       | meaning                                                |
//! |--------------|--------------------------------------------------------|
//! | `error`      | [`check`] returns [`Fault::Error`]; the caller fails   |
//! | `short=N`    | [`check`] returns [`Fault::ShortWrite`]`(N)`           |
//! | `delay=MS`   | [`check`] sleeps `MS` milliseconds, then returns `None`|
//! | `panic`      | [`check`] panics                                       |
//! | `abort`      | [`check`] aborts the process (SIGABRT, no unwinding)   |
//!
//! | trigger      | fires on…                                              |
//! |--------------|--------------------------------------------------------|
//! | *(none)*     | every hit                                              |
//! | `@N`         | exactly the Nth hit (1-based), once                    |
//! | `%K`         | every Kth hit                                          |
//! | `~P:SEED`    | each hit independently with probability `P`, from a    |
//! |              | seeded deterministic stream                            |
//!
//! Examples: `error@3` (fail the third hit), `delay=200` (slow every hit
//! by 200 ms), `short=16%2` (truncate every second write to 16 bytes).
//!
//! # Cross-process configuration
//!
//! `SCUBA_FAULTS="site=plan;site2=plan"` in the environment arms sites at
//! first use, so a re-exec'd or forked child can be wounded without any
//! code path to reach into it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

/// Environment variable parsed on first [`check`]/[`configure`] to arm
/// sites in a child process.
pub const ENV_VAR: &str = "SCUBA_FAULTS";

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state arm flag. `UNINIT` until the first check/configure (so the
/// env var is parsed lazily), then `OFF` whenever the registry is empty
/// and `ON` whenever it is not. The disabled-path cost of [`check`] is
/// exactly one relaxed load of this flag.
static ARMED: AtomicU8 = AtomicU8::new(UNINIT);

/// What an armed site tells its caller to do. Only the effects the caller
/// must act on are returned; `delay`/`panic`/`abort` are executed inside
/// [`check`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an injected error.
    Error,
    /// Perform only the first `N` bytes of the write, then fail.
    ShortWrite(usize),
}

/// What to do when a site's trigger fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Return [`Fault::Error`].
    Error,
    /// Return [`Fault::ShortWrite`] with this byte budget.
    ShortWrite(usize),
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Panic at the site.
    Panic,
    /// Abort the process at the site.
    Abort,
}

/// When a site's effect applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// Exactly the Nth hit (1-based), once.
    OnceAt(u64),
    /// Every Kth hit.
    Every(u64),
    /// Each hit independently with this probability, from a stream seeded
    /// with the given value (deterministic across runs).
    Random(f64, u64),
}

/// A parsed fault plan: an effect plus the trigger deciding which hits it
/// applies to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    pub effect: Effect,
    pub trigger: Trigger,
}

struct Site {
    plan: Plan,
    /// Times [`check`] reached this site while armed.
    hits: AtomicU64,
    /// Times the trigger fired.
    triggered: AtomicU64,
    /// splitmix64 state for `Random` triggers.
    rng: AtomicU64,
}

fn registry() -> &'static RwLock<HashMap<String, Site>> {
    static REG: OnceLock<RwLock<HashMap<String, Site>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Parse a plan string (`error`, `short=16@2`, `delay=200`, `panic%3`,
/// `error~0.25:42`, …).
pub fn parse_plan(spec: &str) -> Result<Plan, String> {
    let spec = spec.trim();
    // Split the trigger suffix off first; '@' / '%' / '~' cannot appear in
    // an effect.
    let (effect_str, trigger) = if let Some((e, n)) = spec.split_once('@') {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad @N trigger in {spec:?}"))?;
        if n == 0 {
            return Err(format!("@N trigger is 1-based, got 0 in {spec:?}"));
        }
        (e, Trigger::OnceAt(n))
    } else if let Some((e, k)) = spec.split_once('%') {
        let k: u64 = k
            .parse()
            .map_err(|_| format!("bad %K trigger in {spec:?}"))?;
        if k == 0 {
            return Err(format!("%K trigger needs K >= 1 in {spec:?}"));
        }
        (e, Trigger::Every(k))
    } else if let Some((e, ps)) = spec.split_once('~') {
        let (p, seed) = ps
            .split_once(':')
            .ok_or_else(|| format!("~P trigger needs ~P:SEED in {spec:?}"))?;
        let p: f64 = p
            .parse()
            .map_err(|_| format!("bad probability in {spec:?}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability out of [0,1] in {spec:?}"));
        }
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed in {spec:?}"))?;
        (e, Trigger::Random(p, seed))
    } else {
        (spec, Trigger::Always)
    };

    let effect = match effect_str {
        "error" => Effect::Error,
        "panic" => Effect::Panic,
        "abort" => Effect::Abort,
        _ => {
            if let Some(ms) = effect_str.strip_prefix("delay=") {
                Effect::Delay(
                    ms.parse()
                        .map_err(|_| format!("bad delay millis in {spec:?}"))?,
                )
            } else if let Some(n) = effect_str.strip_prefix("short=") {
                Effect::ShortWrite(
                    n.parse()
                        .map_err(|_| format!("bad short-write length in {spec:?}"))?,
                )
            } else {
                return Err(format!("unknown effect {effect_str:?} in {spec:?}"));
            }
        }
    };
    Ok(Plan { effect, trigger })
}

/// Lazily parse [`ENV_VAR`] exactly once, transitioning `ARMED` out of
/// `UNINIT`. All registry mutators call this first so explicit
/// configuration composes with env-derived sites.
fn ensure_init() {
    if ARMED.load(Ordering::Relaxed) != UNINIT {
        return;
    }
    let mut reg = lock_write();
    // Re-check under the lock: another thread may have initialized.
    if ARMED.load(Ordering::Relaxed) != UNINIT {
        return;
    }
    if let Ok(spec) = std::env::var(ENV_VAR) {
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((site, plan_str)) = entry.split_once('=') else {
                eprintln!("scuba-faults: ignoring malformed {ENV_VAR} entry {entry:?}");
                continue;
            };
            match parse_plan(plan_str) {
                Ok(plan) => {
                    reg.insert(site.trim().to_owned(), new_site(plan));
                }
                Err(e) => eprintln!("scuba-faults: ignoring {ENV_VAR} entry {entry:?}: {e}"),
            }
        }
    }
    let state = if reg.is_empty() { OFF } else { ON };
    ARMED.store(state, Ordering::SeqCst);
}

fn new_site(plan: Plan) -> Site {
    let seed = match plan.trigger {
        Trigger::Random(_, seed) => seed,
        _ => 0,
    };
    Site {
        plan,
        hits: AtomicU64::new(0),
        triggered: AtomicU64::new(0),
        rng: AtomicU64::new(seed),
    }
}

fn lock_read() -> std::sync::RwLockReadGuard<'static, HashMap<String, Site>> {
    registry().read().unwrap_or_else(|e| e.into_inner())
}

fn lock_write() -> std::sync::RwLockWriteGuard<'static, HashMap<String, Site>> {
    registry().write().unwrap_or_else(|e| e.into_inner())
}

/// The production-path hook. Returns `None` (almost always, and with one
/// relaxed atomic load when nothing is armed) or the [`Fault`] the caller
/// must act on. `delay` plans sleep here; `panic`/`abort` plans do not
/// return.
#[inline]
pub fn check(site: &str) -> Option<Fault> {
    if ARMED.load(Ordering::Relaxed) == OFF {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> Option<Fault> {
    ensure_init();
    if ARMED.load(Ordering::Relaxed) != ON {
        return None;
    }
    let effect = {
        let reg = lock_read();
        let s = reg.get(site)?;
        let hit = s.hits.fetch_add(1, Ordering::SeqCst) + 1;
        // Only armed sites reach this cold path, so the per-site obs
        // counters stay proportional to actual fault activity.
        scuba_obs::labeled_counter("faults_hits_total", &[("site", site)]).inc();
        let fire = match s.plan.trigger {
            Trigger::Always => true,
            Trigger::OnceAt(n) => hit == n,
            Trigger::Every(k) => hit % k == 0,
            Trigger::Random(p, _) => unit_f64(splitmix_next(&s.rng)) < p,
        };
        if !fire {
            return None;
        }
        s.triggered.fetch_add(1, Ordering::SeqCst);
        scuba_obs::labeled_counter("faults_triggered_total", &[("site", site)]).inc();
        s.plan.effect
    }; // registry lock released before any blocking effect
    match effect {
        Effect::Error => Some(Fault::Error),
        Effect::ShortWrite(n) => Some(Fault::ShortWrite(n)),
        Effect::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Effect::Panic => panic!("injected panic at fault site {site:?}"),
        Effect::Abort => {
            eprintln!("scuba-faults: injected abort at fault site {site:?}");
            std::process::abort();
        }
    }
}

fn splitmix_next(state: &AtomicU64) -> u64 {
    let x = state
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::SeqCst)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Arm `site` with a plan string. Replaces any existing plan (and resets
/// the site's counters).
pub fn configure(site: &str, plan: &str) -> Result<(), String> {
    configure_plan(site, parse_plan(plan)?);
    Ok(())
}

/// Arm `site` with an already-parsed [`Plan`].
pub fn configure_plan(site: &str, plan: Plan) {
    ensure_init();
    let mut reg = lock_write();
    reg.insert(site.to_owned(), new_site(plan));
    ARMED.store(ON, Ordering::SeqCst);
}

/// Disarm one site. The fast path goes back to a single load once the
/// registry is empty.
pub fn clear(site: &str) {
    ensure_init();
    let mut reg = lock_write();
    reg.remove(site);
    if reg.is_empty() {
        ARMED.store(OFF, Ordering::SeqCst);
    }
}

/// Disarm every site.
pub fn clear_all() {
    ensure_init();
    let mut reg = lock_write();
    reg.clear();
    ARMED.store(OFF, Ordering::SeqCst);
}

/// Times [`check`] reached `site` while armed (0 if never configured).
pub fn hits(site: &str) -> u64 {
    ensure_init();
    lock_read()
        .get(site)
        .map(|s| s.hits.load(Ordering::SeqCst))
        .unwrap_or(0)
}

/// Times `site`'s trigger fired (0 if never configured).
pub fn triggered(site: &str) -> u64 {
    ensure_init();
    lock_read()
        .get(site)
        .map(|s| s.triggered.load(Ordering::SeqCst))
        .unwrap_or(0)
}

/// True if any site is currently armed.
pub fn any_armed() -> bool {
    ensure_init();
    ARMED.load(Ordering::SeqCst) == ON
}

/// RAII guard from [`guard`], disarming its site on drop (including on
/// test panic).
#[derive(Debug)]
pub struct FaultGuard {
    site: String,
}

impl FaultGuard {
    /// The guarded site name.
    pub fn site(&self) -> &str {
        &self.site
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear(&self.site);
    }
}

/// Arm `site` and return a guard that disarms it when dropped.
pub fn guard(site: &str, plan: &str) -> Result<FaultGuard, String> {
    configure(site, plan)?;
    Ok(FaultGuard {
        site: site.to_owned(),
    })
}

/// Serialize tests that arm failpoints: the registry is process-global, so
/// concurrently running `#[test]`s would otherwise wound each other. Hold
/// the returned guard for the duration of the test.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_check_is_none_and_counts_nothing() {
        let _x = exclusive();
        clear_all();
        assert_eq!(check("nowhere"), None);
        assert_eq!(hits("nowhere"), 0);
        assert!(!any_armed());
    }

    #[test]
    fn always_error_fires_every_hit() {
        let _x = exclusive();
        clear_all();
        let _g = guard("t::always", "error").unwrap();
        for _ in 0..5 {
            assert_eq!(check("t::always"), Some(Fault::Error));
        }
        assert_eq!(hits("t::always"), 5);
        assert_eq!(triggered("t::always"), 5);
    }

    #[test]
    fn once_at_fires_exactly_nth_hit() {
        let _x = exclusive();
        clear_all();
        let _g = guard("t::once", "error@3").unwrap();
        assert_eq!(check("t::once"), None);
        assert_eq!(check("t::once"), None);
        assert_eq!(check("t::once"), Some(Fault::Error));
        assert_eq!(check("t::once"), None);
        assert_eq!(triggered("t::once"), 1);
    }

    #[test]
    fn every_k_fires_periodically() {
        let _x = exclusive();
        clear_all();
        let _g = guard("t::every", "short=7%2").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| check("t::every").is_some()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
        assert_eq!(check("t::every"), None);
        assert_eq!(check("t::every"), Some(Fault::ShortWrite(7)));
    }

    #[test]
    fn random_trigger_is_deterministic_and_calibrated() {
        let _x = exclusive();
        clear_all();
        let run = || -> Vec<bool> {
            let _g = guard("t::rand", "error~0.3:42").unwrap();
            (0..1000).map(|_| check("t::rand").is_some()).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give the same firing sequence");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((200..400).contains(&fired), "fired {fired}/1000 at p=0.3");
    }

    #[test]
    fn delay_sleeps_then_passes() {
        let _x = exclusive();
        clear_all();
        let _g = guard("t::delay", "delay=30").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(check("t::delay"), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn guard_drop_disarms() {
        let _x = exclusive();
        clear_all();
        {
            let _g = guard("t::guarded", "error").unwrap();
            assert_eq!(check("t::guarded"), Some(Fault::Error));
        }
        assert_eq!(check("t::guarded"), None);
        assert!(!any_armed());
    }

    #[test]
    fn clear_site_leaves_others_armed() {
        let _x = exclusive();
        clear_all();
        configure("t::a", "error").unwrap();
        configure("t::b", "error").unwrap();
        clear("t::a");
        assert_eq!(check("t::a"), None);
        assert_eq!(check("t::b"), Some(Fault::Error));
        assert!(any_armed());
        clear_all();
    }

    #[test]
    fn plan_parse_errors() {
        assert!(parse_plan("bogus").is_err());
        assert!(parse_plan("error@0").is_err());
        assert!(parse_plan("error%0").is_err());
        assert!(parse_plan("error~2.0:1").is_err());
        assert!(parse_plan("error~0.5").is_err());
        assert!(parse_plan("delay=xyz").is_err());
        assert!(parse_plan("short=").is_err());
        assert!(configure("t::bad", "nope").is_err());
    }

    #[test]
    fn plan_parse_round_trips() {
        assert_eq!(
            parse_plan("error").unwrap(),
            Plan {
                effect: Effect::Error,
                trigger: Trigger::Always
            }
        );
        assert_eq!(
            parse_plan("short=16@2").unwrap(),
            Plan {
                effect: Effect::ShortWrite(16),
                trigger: Trigger::OnceAt(2)
            }
        );
        assert_eq!(
            parse_plan("delay=250%3").unwrap(),
            Plan {
                effect: Effect::Delay(250),
                trigger: Trigger::Every(3)
            }
        );
        assert_eq!(
            parse_plan("abort~0.5:7").unwrap(),
            Plan {
                effect: Effect::Abort,
                trigger: Trigger::Random(0.5, 7)
            }
        );
    }

    #[test]
    #[should_panic(expected = "injected panic at fault site")]
    fn panic_effect_panics() {
        let _x = exclusive();
        clear_all();
        // Configure without a guard: the panic unwinds through this frame,
        // so clean up via the poisoned-lock-tolerant clear in the harness
        // of the next test (clear_all at each test head).
        configure("t::panic", "panic").unwrap();
        let _ = check("t::panic");
    }
}
