//! `scuba-obs` — process-wide observability for the restart protocol.
//!
//! The paper tells its operational story through measurements: Figure 5's
//! restart-time breakdown, Figure 7's per-phase copy loop, and Figure 8's
//! fleet-wide rollover dashboard. This crate is the substrate those numbers
//! flow through in the reproduction:
//!
//! * a process-global **metrics registry** ([`counter`], [`gauge`],
//!   [`histogram`]) of relaxed-atomic counters/gauges and fixed-bucket
//!   log₂-scale histograms — lock-free on the hot path;
//! * a structured **span API** ([`span_start`], [`span!`]) recording
//!   start/duration/bytes/outcome into a bounded ring buffer, flushed on
//!   `Drop` so error paths keep their partial timings;
//! * two **sinks** — Prometheus text exposition and a JSON snapshot
//!   ([`prometheus_text`], [`json_snapshot`]);
//! * a **[`RestartReport`]** consumer that renders the Figure-5-style
//!   per-phase breakdown after every backup/restore.
//!
//! # Hot-path contract
//!
//! Like `scuba-faults`, the disabled path is one relaxed atomic load plus a
//! branch — cheap enough to leave instrumentation compiled into release
//! binaries. Instrumentation is **on by default** and disabled by setting
//! `SCUBA_OBS=0` (or `off`/`false`) in the environment; `set_enabled`
//! overrides the environment at runtime (used by tests and benches).

mod metrics;
mod report;
mod sink;
mod span;
mod telemetry;

pub use metrics::{
    counter, counter_value, gauge, gauge_value, gauge_values, histogram, histogram_quantile,
    labeled_counter, labeled_gauge, labeled_name, registry_snapshot, Counter, Gauge, Histogram,
    MetricSnapshot, HISTOGRAM_BUCKETS,
};
pub use report::{
    last_backup_breakdown, last_restore_breakdown, publish_breakdown, Phase, PhaseAcc,
    PhaseBreakdown, RestartReport, TableSample, BACKUP_PHASES, RESTORE_PHASES,
};
pub use sink::{json_snapshot, prometheus_text, prometheus_text_for, promlint};
pub use span::{
    clear_spans, clear_trace_id, current_trace_id, drain_spans, emit_span, next_trace_id,
    recent_spans, set_span_capacity, set_trace_id, span_start, Span, SpanRecord,
};
pub use telemetry::{TelemetryEvent, TelemetrySampler, TELEMETRY_QUANTILES};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Environment variable controlling instrumentation. Unset or anything other
/// than `0`/`off`/`false` means **enabled**.
pub const ENV_VAR: &str = "SCUBA_OBS";

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state switch: 0 = not yet initialised from the environment,
/// 1 = disabled, 2 = enabled. The fast path is a single relaxed load.
static ENABLED: AtomicU8 = AtomicU8::new(UNINIT);

/// Is instrumentation live? One relaxed load + branch on the hot path; the
/// first call per process parses [`ENV_VAR`] in a `#[cold]` slow path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var(ENV_VAR) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        }
        Err(_) => true,
    };
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Force instrumentation on or off, overriding the environment. Tests and
/// benches use this; production code relies on [`ENV_VAR`].
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// A timer that only reads the clock when instrumentation is enabled, so
/// disabled runs skip the `Instant::now()` syscall entirely.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start timing if instrumentation is enabled; otherwise an inert
    /// stopwatch whose readings are all zero.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch(if enabled() {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// A stopwatch that never reads the clock (reads zero).
    pub fn inert() -> Stopwatch {
        Stopwatch(None)
    }

    /// Whether this stopwatch actually captured a start time.
    #[inline]
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since `start()`, or 0 for an inert stopwatch.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        match self.0 {
            Some(t) => t.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Elapsed time, or zero for an inert stopwatch.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
    }
}

/// Serialise tests that toggle [`set_enabled`] or assert on process-global
/// registry state. Mirrors `scuba_faults::exclusive()`.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_tracks_enabled_state() {
        let _x = exclusive();
        set_enabled(true);
        let sw = Stopwatch::start();
        assert!(sw.active());
        set_enabled(false);
        let off = Stopwatch::start();
        assert!(!off.active());
        assert_eq!(off.elapsed_ns(), 0);
        assert_eq!(off.elapsed(), Duration::ZERO);
        set_enabled(true);
    }

    #[test]
    fn inert_stopwatch_reads_zero() {
        let sw = Stopwatch::inert();
        assert!(!sw.active());
        assert_eq!(sw.elapsed_ns(), 0);
    }
}
