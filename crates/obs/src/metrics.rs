//! The process-global metrics registry: named counters, gauges, and
//! log₂-bucket histograms.
//!
//! Metric handles are `&'static` — looked up (or created) once through the
//! registry `RwLock`, then updated forever after with relaxed atomics. Hot
//! sites cache the handle in a `OnceLock` via the [`counter!`] /
//! [`gauge!`] / [`histogram!`] macros so the steady-state cost is one
//! enabled-check load plus one `fetch_add`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::enabled;

/// Monotonic counter. Increments are relaxed atomics and become no-ops when
/// instrumentation is disabled.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed gauge (e.g. live shm segment count). Updates are relaxed atomics
/// and become no-ops when instrumentation is disabled.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of a `u64`, plus the
/// zero bucket folded into slot 0 and an overflow (+Inf) slot at 63.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-bucket log₂ histogram. Bucket 0 holds exactly the value 0; bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i - 1]` (upper bound `2^i - 1`); bucket 63 is
/// the +Inf overflow. Observations are three relaxed `fetch_add`s.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`,
    /// clamped into the overflow slot.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i`, or `None` for the +Inf slot.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        match i {
            0 => Some(0),
            _ if i < HISTOGRAM_BUCKETS - 1 => Some((1u64 << i) - 1),
            _ => None,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Raw (non-cumulative) per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) of the observed values, or
    /// `None` if nothing was observed.
    ///
    /// The estimate walks the cumulative bucket counts to the bucket that
    /// contains the nearest-rank `⌈q·count⌉` observation, then
    /// interpolates linearly inside it. Because the exact nearest-rank
    /// percentile of the observed samples lives in that same bucket, the
    /// estimate is always within one log₂ bucket of the true value — the
    /// error bound the SLO dashboards rely on.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += n;
            if cumulative >= target {
                if i == 0 {
                    return Some(0);
                }
                let lo = 1u64 << (i - 1);
                let hi = Self::bucket_bound(i).unwrap_or(u64::MAX);
                let frac = (target - before) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Some(est.min(hi as f64).max(lo as f64) as u64);
            }
        }
        unreachable!("cumulative bucket counts must reach the total")
    }
}

/// A registered metric of any kind.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

pub(crate) fn registry() -> &'static RwLock<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

fn lock_read() -> std::sync::RwLockReadGuard<'static, BTreeMap<String, Metric>> {
    registry().read().unwrap_or_else(|p| p.into_inner())
}

fn lock_write() -> std::sync::RwLockWriteGuard<'static, BTreeMap<String, Metric>> {
    registry().write().unwrap_or_else(|p| p.into_inner())
}

/// Look up or create the counter `name`. Registration leaks one `Counter`
/// per distinct name for the life of the process — metric names are a small
/// fixed vocabulary, so this is the standard static-registry trade.
pub fn counter(name: &str) -> &'static Counter {
    if let Some(Metric::Counter(c)) = lock_read().get(name) {
        return c;
    }
    let mut reg = lock_write();
    match reg.get(name) {
        Some(Metric::Counter(c)) => c,
        Some(_) => panic!("metric `{name}` already registered with a different type"),
        None => {
            let c: &'static Counter = Box::leak(Box::new(Counter::new()));
            reg.insert(name.to_string(), Metric::Counter(c));
            c
        }
    }
}

/// Look up or create the gauge `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    if let Some(Metric::Gauge(g)) = lock_read().get(name) {
        return g;
    }
    let mut reg = lock_write();
    match reg.get(name) {
        Some(Metric::Gauge(g)) => g,
        Some(_) => panic!("metric `{name}` already registered with a different type"),
        None => {
            let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
            reg.insert(name.to_string(), Metric::Gauge(g));
            g
        }
    }
}

/// Look up or create the histogram `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    if let Some(Metric::Histogram(h)) = lock_read().get(name) {
        return h;
    }
    let mut reg = lock_write();
    match reg.get(name) {
        Some(Metric::Histogram(h)) => h,
        Some(_) => panic!("metric `{name}` already registered with a different type"),
        None => {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
            reg.insert(name.to_string(), Metric::Histogram(h));
            h
        }
    }
}

/// Build the full registry key for a labelled series:
/// `name{k1="v1",k2="v2"}` with label values escaped for exposition.
pub fn labeled_name(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Counter with labels, e.g. `leaf_recoveries_total{leaf="pfx:0"}`.
pub fn labeled_counter(name: &str, labels: &[(&str, &str)]) -> &'static Counter {
    counter(&labeled_name(name, labels))
}

/// Gauge with labels.
pub fn labeled_gauge(name: &str, labels: &[(&str, &str)]) -> &'static Gauge {
    gauge(&labeled_name(name, labels))
}

/// Current value of a counter series by full name (`None` if unregistered).
pub fn counter_value(name: &str) -> Option<u64> {
    match lock_read().get(name) {
        Some(Metric::Counter(c)) => Some(c.get()),
        _ => None,
    }
}

/// Current value of a gauge series by full name (`None` if unregistered).
pub fn gauge_value(name: &str) -> Option<i64> {
    match lock_read().get(name) {
        Some(Metric::Gauge(g)) => Some(g.get()),
        _ => None,
    }
}

/// All registered gauges and their values — used by the chaos soak to
/// assert the "no negative gauges" invariant in one sweep.
pub fn gauge_values() -> Vec<(String, i64)> {
    lock_read()
        .iter()
        .filter_map(|(name, m)| match m {
            Metric::Gauge(g) => Some((name.clone(), g.get())),
            _ => None,
        })
        .collect()
}

/// Point-in-time value of one registered series, as read by
/// [`registry_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram totals plus raw (non-cumulative) bucket counts.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Raw per-bucket counts (see [`Histogram::bucket_counts`]).
        buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    },
}

/// Snapshot every registered series — full key (labels included) plus its
/// current value. This is the registry walk the telemetry sampler and the
/// full-registry lint are built on: unlike a fixture list, it sees series
/// registered at any point in the process lifetime (e.g. per-table gauges
/// that appear long after startup).
pub fn registry_snapshot() -> Vec<(String, MetricSnapshot)> {
    lock_read()
        .iter()
        .map(|(name, m)| {
            let value = match m {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: Box::new(h.bucket_counts()),
                },
            };
            (name.clone(), value)
        })
        .collect()
}

/// Quantile estimate of a registered histogram series by full name
/// (`None` if unregistered, not a histogram, or empty).
pub fn histogram_quantile(name: &str, q: f64) -> Option<u64> {
    match lock_read().get(name) {
        Some(Metric::Histogram(h)) => h.quantile(q),
        _ => None,
    }
}

/// `&'static Counter` for a hot site: the registry lookup runs once, then
/// the cached handle is a plain static reference.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::counter($name))
    }};
}

/// `&'static Gauge` for a hot site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::gauge($name))
    }};
}

/// `&'static Histogram` for a hot site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        // Each finite bucket's bound is the largest value it admits.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bucket_bound(i).unwrap();
            assert_eq!(Histogram::bucket_index(bound), i, "bound of bucket {i}");
            assert_eq!(Histogram::bucket_index(bound + 1), i + 1);
        }
        assert_eq!(Histogram::bucket_bound(63), None);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_single_value_lands_in_its_bucket() {
        let h = Histogram::new();
        h.sum.fetch_add(100, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.buckets[Histogram::bucket_index(100)].fetch_add(1, Ordering::Relaxed);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert_eq!(
                Histogram::bucket_index(est),
                Histogram::bucket_index(100),
                "q={q} est={est}"
            );
        }
    }

    #[test]
    fn quantile_tracks_exact_percentile_bucket() {
        let _x = crate::exclusive();
        crate::set_enabled(true);
        let h = crate::histogram("obs_test_quantile_ns");
        let mut samples: Vec<u64> = Vec::new();
        // Skewed distribution: many fast, few slow.
        for i in 0..900u64 {
            samples.push(50 + i % 30);
        }
        for i in 0..99u64 {
            samples.push(5_000 + i * 17);
        }
        samples.push(1_000_000);
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).unwrap();
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let diff =
                (Histogram::bucket_index(est) as i64 - Histogram::bucket_index(exact) as i64).abs();
            assert!(
                diff <= 1,
                "q={q}: est {est} vs exact {exact} ({diff} buckets)"
            );
        }
    }

    #[test]
    fn quantile_zero_only() {
        let h = Histogram::new();
        h.buckets[0].fetch_add(5, Ordering::Relaxed);
        h.count.fetch_add(5, Ordering::Relaxed);
        assert_eq!(h.quantile(0.999), Some(0));
    }

    #[test]
    fn registry_snapshot_sees_late_registrations() {
        let _x = crate::exclusive();
        crate::set_enabled(true);
        counter("obs_test_snap_early_total").inc();
        // A "per-table" gauge registered long after startup must appear.
        labeled_gauge("obs_test_snap_late", &[("table", "t,x\"y")]).set(7);
        let snap = registry_snapshot();
        let late = labeled_name("obs_test_snap_late", &[("table", "t,x\"y")]);
        assert!(snap
            .iter()
            .any(|(k, v)| k == &late && *v == MetricSnapshot::Gauge(7)));
        assert!(snap.iter().any(|(k, v)| k == "obs_test_snap_early_total"
            && matches!(v, MetricSnapshot::Counter(n) if *n >= 1)));
    }

    #[test]
    fn labeled_name_escapes() {
        assert_eq!(
            labeled_name("m", &[("k", "a\"b\\c")]),
            "m{k=\"a\\\"b\\\\c\"}"
        );
        assert_eq!(
            labeled_name("m", &[("a", "1"), ("b", "2")]),
            "m{a=\"1\",b=\"2\"}"
        );
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let _x = crate::exclusive();
        counter("obs_test_conflict_metric");
        gauge("obs_test_conflict_metric");
    }

    mod quantile_prop {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Adversarial sample streams: each element is a (shape, raw)
        /// pair mapped into one of several regimes — zeros, tight
        /// clusters, bucket-boundary values, exponential spreads, and
        /// huge outliers — so single runs mix pathological shapes.
        fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
            vec((0u8..6, 0u64..1_000_000), 1..400).prop_map(|pairs| {
                pairs
                    .into_iter()
                    .map(|(shape, raw)| match shape {
                        0 => 0,
                        1 => raw % 7,                  // tiny cluster
                        2 => 1u64 << (raw % 40),       // exact bucket lower bounds
                        3 => (1u64 << (raw % 40)) - 1, // exact bucket upper bounds
                        4 => 1_000_000 + raw,          // wide mid-range spread
                        _ => u64::MAX - raw,           // +Inf-bucket outliers
                    })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn quantile_within_one_bucket_of_exact(samples in arb_samples()) {
                let _x = crate::exclusive();
                crate::set_enabled(true);
                let h = Histogram::new();
                for &s in &samples {
                    h.observe(s);
                }
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    let est = h.quantile(q).unwrap();
                    let rank = ((q * sorted.len() as f64).ceil() as usize)
                        .clamp(1, sorted.len());
                    let exact = sorted[rank - 1];
                    let diff = (Histogram::bucket_index(est) as i64
                        - Histogram::bucket_index(exact) as i64)
                        .abs();
                    prop_assert!(
                        diff <= 1,
                        "q={} est={} exact={} off by {} buckets (n={})",
                        q, est, exact, diff, sorted.len()
                    );
                }
            }
        }
    }
}
