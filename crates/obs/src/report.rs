//! Figure-5-style restart phase accounting and the `RestartReport` renderer.
//!
//! The backup path decomposes into prepare → extract → encode → CRC →
//! shm-write → commit; restore mirrors it as open → CRC → heap-copy →
//! decode → install → commit. `PhaseAcc` collects nanoseconds per phase
//! (atomic, so parallel copy workers can add concurrently), and
//! `PhaseBreakdown` is the frozen result stashed after every run —
//! including failed ones, so partial timings survive for diagnosis.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::labeled_counter;

/// One phase of the restart protocol (backup and restore share the enum;
/// `Crc` and `Commit` appear on both sides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Backup: segment estimate/create + metadata registration.
    Prepare,
    /// Backup: `backup_extract` pulling units out of the store.
    Extract,
    /// Backup: serialising extracted units into frames (store callback
    /// time minus sink-internal CRC + write time).
    Encode,
    /// Checksumming payload (both directions).
    Crc,
    /// Backup: writing frames into the shared-memory segment.
    ShmWrite,
    /// Valid-bit flip + metadata sync (both directions).
    Commit,
    /// Restore: opening and mapping the existing segments.
    Open,
    /// Restore: the one `memcpy` out of shared memory onto the heap.
    HeapCopy,
    /// Restore: deserialising frames back into units (store callback time
    /// minus source-internal CRC + copy time).
    Decode,
    /// Restore: installing decoded units into the store.
    Install,
}

/// Total number of [`Phase`] variants (array-acc size).
const PHASE_COUNT: usize = 10;

/// Backup phases in report order.
pub const BACKUP_PHASES: [Phase; 6] = [
    Phase::Prepare,
    Phase::Extract,
    Phase::Encode,
    Phase::Crc,
    Phase::ShmWrite,
    Phase::Commit,
];

/// Restore phases in report order.
pub const RESTORE_PHASES: [Phase; 6] = [
    Phase::Open,
    Phase::Crc,
    Phase::HeapCopy,
    Phase::Decode,
    Phase::Install,
    Phase::Commit,
];

impl Phase {
    /// Stable lower-case name used in metric labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Extract => "extract",
            Phase::Encode => "encode",
            Phase::Crc => "crc",
            Phase::ShmWrite => "shm_write",
            Phase::Commit => "commit",
            Phase::Open => "open",
            Phase::HeapCopy => "heap_copy",
            Phase::Decode => "decode",
            Phase::Install => "install",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Prepare => 0,
            Phase::Extract => 1,
            Phase::Encode => 2,
            Phase::Crc => 3,
            Phase::ShmWrite => 4,
            Phase::Commit => 5,
            Phase::Open => 6,
            Phase::HeapCopy => 7,
            Phase::Decode => 8,
            Phase::Install => 9,
        }
    }
}

/// Per-phase nanosecond accumulator for one backup/restore run. Atomic so
/// the parallel copy pool's workers can add without coordination.
#[derive(Debug, Default)]
pub struct PhaseAcc {
    slots: [AtomicU64; PHASE_COUNT],
}

impl PhaseAcc {
    /// Fresh accumulator with all phases at zero.
    pub fn new() -> PhaseAcc {
        PhaseAcc::default()
    }

    /// Add `ns` nanoseconds to `phase`.
    #[inline]
    pub fn add(&self, phase: Phase, ns: u64) {
        if ns > 0 {
            self.slots[phase.index()].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Nanoseconds accumulated for `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.slots[phase.index()].load(Ordering::Relaxed)
    }
}

/// Per-table timing captured during a run; failed tables keep the partial
/// duration measured up to the failure point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSample {
    /// Table (unit) name.
    pub table: String,
    /// Wall time spent copying this table (partial if `!ok`).
    pub duration: Duration,
    /// Payload bytes moved for this table before success/failure.
    pub bytes: u64,
    /// Frames moved for this table.
    pub chunks: u64,
    /// Whether the table completed.
    pub ok: bool,
}

/// The frozen Figure-5-style result of one backup or restore run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// `"backup"` or `"restore"`.
    pub op: &'static str,
    /// Phase durations in report order.
    pub phases: Vec<(Phase, Duration)>,
    /// End-to-end wall time of the run.
    pub total: Duration,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Total frames moved.
    pub chunks: u64,
    /// Units (tables) attempted.
    pub units: usize,
    /// Copy-pool width used.
    pub threads: usize,
    /// `false` if the run errored out (timings are partial).
    pub complete: bool,
    /// Per-table samples, including failed tables.
    pub tables: Vec<TableSample>,
}

impl PhaseBreakdown {
    /// Assemble a breakdown from an accumulator. `phases` selects and
    /// orders which slots appear (backup vs restore set); the run-level
    /// fields (`total`, `bytes`, …) start zeroed and are filled in by the
    /// caller.
    pub fn from_acc(op: &'static str, acc: &PhaseAcc, phases: &[Phase]) -> PhaseBreakdown {
        PhaseBreakdown {
            op,
            phases: phases
                .iter()
                .map(|&p| (p, Duration::from_nanos(acc.get(p))))
                .collect(),
            total: Duration::ZERO,
            bytes: 0,
            chunks: 0,
            units: 0,
            threads: 1,
            complete: true,
            tables: Vec::new(),
        }
    }

    /// Sum of the per-phase durations.
    pub fn phase_sum(&self) -> Duration {
        self.phases.iter().map(|&(_, d)| d).sum()
    }

    /// Duration recorded for one phase (zero if absent).
    pub fn phase(&self, phase: Phase) -> Duration {
        self.phases
            .iter()
            .find(|&&(p, _)| p == phase)
            .map(|&(_, d)| d)
            .unwrap_or(Duration::ZERO)
    }

    /// Throughput over the whole run in MB/s (0 when the total is 0).
    pub fn mb_per_sec(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs > 0.0 {
            self.bytes as f64 / secs / 1e6
        } else {
            0.0
        }
    }
}

/// Renders one or two [`PhaseBreakdown`]s as the Figure-5-style table that
/// `exp_restart_time` prints after each run.
#[derive(Debug, Clone, Default)]
pub struct RestartReport {
    /// Backup-side breakdown, if a backup ran.
    pub backup: Option<PhaseBreakdown>,
    /// Restore-side breakdown, if a restore ran.
    pub restore: Option<PhaseBreakdown>,
}

impl RestartReport {
    /// Report over whatever the last backup/restore in this process were.
    pub fn capture() -> RestartReport {
        RestartReport {
            backup: last_backup_breakdown(),
            restore: last_restore_breakdown(),
        }
    }
}

fn fmt_phase_dur(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.1} us", secs * 1e6)
    }
}

fn write_breakdown(f: &mut fmt::Formatter<'_>, b: &PhaseBreakdown) -> fmt::Result {
    writeln!(
        f,
        "  {} — {} unit(s), {} chunk(s), {} bytes, {} thread(s){}",
        b.op,
        b.units,
        b.chunks,
        b.bytes,
        b.threads,
        if b.complete { "" } else { "  [INCOMPLETE]" }
    )?;
    let total_ns = b.total.as_nanos().max(1) as f64;
    for &(phase, dur) in &b.phases {
        writeln!(
            f,
            "    {:<10} {:>12}  {:>5.1}%",
            phase.name(),
            fmt_phase_dur(dur),
            dur.as_nanos() as f64 / total_ns * 100.0
        )?;
    }
    writeln!(
        f,
        "    {:<10} {:>12}  (phase sum {}, {:.0} MB/s)",
        "total",
        fmt_phase_dur(b.total),
        fmt_phase_dur(b.phase_sum()),
        b.mb_per_sec()
    )?;
    for t in &b.tables {
        writeln!(
            f,
            "      table {:<16} {:>12}  {:>10} B  {:>6} chunk(s)  {}",
            t.table,
            fmt_phase_dur(t.duration),
            t.bytes,
            t.chunks,
            if t.ok { "ok" } else { "FAILED (partial)" }
        )?;
    }
    Ok(())
}

impl fmt::Display for RestartReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "restart report (Figure 5 phase breakdown):")?;
        match (&self.backup, &self.restore) {
            (None, None) => writeln!(f, "  (no backup or restore recorded)")?,
            (b, r) => {
                if let Some(b) = b {
                    write_breakdown(f, b)?;
                }
                if let Some(r) = r {
                    write_breakdown(f, r)?;
                }
            }
        }
        Ok(())
    }
}

static LAST_BACKUP: Mutex<Option<PhaseBreakdown>> = Mutex::new(None);
static LAST_RESTORE: Mutex<Option<PhaseBreakdown>> = Mutex::new(None);

fn last_slot(op: &str) -> &'static Mutex<Option<PhaseBreakdown>> {
    if op == "restore" {
        &LAST_RESTORE
    } else {
        &LAST_BACKUP
    }
}

/// Stash a finished breakdown as the process-wide "last run" for its op and
/// mirror the per-phase nanoseconds into the
/// `restart_phase_nanos_total{op,phase}` counter family.
pub fn publish_breakdown(breakdown: PhaseBreakdown) {
    for &(phase, dur) in &breakdown.phases {
        labeled_counter(
            "restart_phase_nanos_total",
            &[("op", breakdown.op), ("phase", phase.name())],
        )
        .add(dur.as_nanos() as u64);
    }
    let slot = last_slot(breakdown.op);
    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(breakdown);
}

/// The most recent backup breakdown published in this process.
pub fn last_backup_breakdown() -> Option<PhaseBreakdown> {
    LAST_BACKUP
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// The most recent restore breakdown published in this process.
pub fn last_restore_breakdown() -> Option<PhaseBreakdown> {
    LAST_RESTORE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_breakdown() -> PhaseBreakdown {
        let acc = PhaseAcc::new();
        acc.add(Phase::Extract, 1_000_000);
        acc.add(Phase::Crc, 500_000);
        acc.add(Phase::ShmWrite, 2_000_000);
        let mut b = PhaseBreakdown::from_acc("backup", &acc, &BACKUP_PHASES);
        b.total = Duration::from_nanos(3_600_000);
        b.bytes = 4096;
        b.chunks = 4;
        b.units = 2;
        b.tables = vec![TableSample {
            table: "t".into(),
            duration: Duration::from_millis(3),
            bytes: 4096,
            chunks: 4,
            ok: true,
        }];
        b
    }

    #[test]
    fn breakdown_math() {
        let b = sample_breakdown();
        assert_eq!(b.phase(Phase::Crc), Duration::from_nanos(500_000));
        assert_eq!(b.phase_sum(), Duration::from_nanos(3_500_000));
        assert!(b.mb_per_sec() > 0.0);
    }

    #[test]
    fn report_renders_phases_and_tables() {
        let report = RestartReport {
            backup: Some(sample_breakdown()),
            restore: None,
        };
        let text = format!("{report}");
        assert!(text.contains("extract"), "{text}");
        assert!(text.contains("shm_write"), "{text}");
        assert!(text.contains("table t"), "{text}");
        assert!(!text.contains("INCOMPLETE"), "{text}");
    }

    #[test]
    fn publish_updates_last_and_counters() {
        let _x = crate::exclusive();
        crate::set_enabled(true);
        let before = crate::counter_value(&crate::labeled_name(
            "restart_phase_nanos_total",
            &[("op", "backup"), ("phase", "crc")],
        ))
        .unwrap_or(0);
        let b = sample_breakdown();
        publish_breakdown(b.clone());
        assert_eq!(last_backup_breakdown().as_ref(), Some(&b));
        let after = crate::counter_value(&crate::labeled_name(
            "restart_phase_nanos_total",
            &[("op", "backup"), ("phase", "crc")],
        ))
        .unwrap();
        assert_eq!(after - before, 500_000);
    }
}
