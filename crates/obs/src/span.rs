//! Structured spans: scoped timers with attributes, bytes, and an outcome,
//! recorded into a bounded ring buffer when dropped.
//!
//! The Drop-flush is load-bearing: a worker that errors mid-copy still
//! records its partial span (outcome `"error"`, duration up to the failure
//! point), which is what makes failed restarts diagnosable (ISSUE 3
//! satellite 1).
//!
//! Every record carries the **trace id** that was current when the span
//! opened (see [`set_trace_id`]): the rollover orchestrator stamps one id
//! on a whole fleet restart, so a single query over the self-telemetry
//! table reconstructs the rollover as a per-leaf timeline. Ring overflow
//! is no longer silent — each record evicted before being drained bumps
//! `span_ring_dropped_total`, which the chaos soak asserts stays zero.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::enabled;

/// Default ring capacity; override with [`set_span_capacity`].
const DEFAULT_CAPACITY: usize = 256;

struct Ring {
    records: VecDeque<SpanRecord>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: Mutex<Ring> = Mutex::new(Ring {
        records: VecDeque::new(),
        capacity: DEFAULT_CAPACITY,
    });
    &RING
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(|p| p.into_inner())
}

/// The process-wide current trace id (0 = no trace). Global rather than
/// thread-local because the copy pool's worker threads record spans on
/// behalf of whatever restart is in flight; the rollover orchestrator is
/// single-threaded, so one restart trace is active at a time.
static CURRENT_TRACE: AtomicU64 = AtomicU64::new(0);

/// Monotonic source for [`next_trace_id`].
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh nonzero trace id, unique within this process and
/// distinct across processes (the pid seeds the high bits).
pub fn next_trace_id() -> u64 {
    (u64::from(std::process::id()) << 32)
        | (NEXT_TRACE.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
}

/// Set the process-wide current trace id; spans opened while it is set
/// record it. Pass the id from [`next_trace_id`].
pub fn set_trace_id(id: u64) {
    CURRENT_TRACE.store(id, Ordering::Relaxed);
}

/// Clear the current trace id (back to untraced).
pub fn clear_trace_id() {
    CURRENT_TRACE.store(0, Ordering::Relaxed);
}

/// The trace id spans opened now would record (0 = none).
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.load(Ordering::Relaxed)
}

/// A finished span as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `backup.table`.
    pub name: &'static str,
    /// Attribute key/value pairs in the order they were attached.
    pub attrs: Vec<(&'static str, String)>,
    /// Wall time between `span_start` and drop.
    pub duration: Duration,
    /// Bytes attributed to the span (0 if never set).
    pub bytes: u64,
    /// `"ok"` if [`Span::ok`] ran, otherwise `"error"`.
    pub outcome: &'static str,
    /// Trace id current when the span opened (0 = untraced).
    pub trace_id: u64,
}

impl SpanRecord {
    /// The value of attribute `key`, if attached.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An in-flight span. Records itself into the ring buffer when dropped;
/// call [`Span::ok`] on the success path so the outcome flips from the
/// default `"error"`.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    attrs: Vec<(&'static str, String)>,
    bytes: u64,
    outcome: &'static str,
    trace_id: u64,
}

/// Open a span. When instrumentation is disabled the span is inert: no
/// clock read, attributes are not formatted, and nothing is recorded.
#[inline]
pub fn span_start(name: &'static str) -> Span {
    let on = enabled();
    Span {
        name,
        start: if on { Some(Instant::now()) } else { None },
        attrs: Vec::new(),
        bytes: 0,
        outcome: "error",
        trace_id: if on { current_trace_id() } else { 0 },
    }
}

impl Span {
    /// Attach an attribute. Skips the `Display` formatting entirely when
    /// the span is inert.
    #[inline]
    pub fn attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Span {
        if self.start.is_some() {
            self.attrs.push((key, value.to_string()));
        }
        self
    }

    /// Attach a byte count (e.g. payload copied under this span).
    #[inline]
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Add to the byte count.
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Whether this span is live (instrumentation was enabled at open).
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Elapsed time so far (zero for an inert span).
    pub fn elapsed(&self) -> Duration {
        self.start.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Mark the span successful and record it (consumes the span; the
    /// actual recording happens in `Drop`).
    #[inline]
    pub fn ok(mut self) {
        self.outcome = "ok";
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        push_record(SpanRecord {
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
            duration: start.elapsed(),
            bytes: self.bytes,
            outcome: self.outcome,
            trace_id: self.trace_id,
        });
    }
}

fn push_record(record: SpanRecord) {
    let mut dropped = 0u64;
    {
        let mut ring = lock_ring();
        while ring.records.len() >= ring.capacity {
            ring.records.pop_front(); // overflow drops the oldest span
            dropped += 1;
        }
        ring.records.push_back(record);
    }
    if dropped > 0 {
        // Outside the ring lock: counter registration takes the registry
        // lock, and lock-order independence keeps both uncontended.
        crate::counter!("span_ring_dropped_total").add(dropped);
    }
}

/// Record a span directly with an explicit duration — for retrospective
/// timings (e.g. the restart protocol's per-phase breakdown, measured by
/// `PhaseAcc` and emitted as spans after the run). No-op when
/// instrumentation is disabled. The record's `trace_id` is taken as given;
/// pass [`current_trace_id`] to join the ambient trace.
pub fn emit_span(record: SpanRecord) {
    if enabled() {
        push_record(record);
    }
}

/// Resize the ring buffer (drops oldest records if shrinking — counted as
/// overflow drops).
pub fn set_span_capacity(capacity: usize) {
    let mut dropped = 0u64;
    {
        let mut ring = lock_ring();
        ring.capacity = capacity.max(1);
        while ring.records.len() > ring.capacity {
            ring.records.pop_front();
            dropped += 1;
        }
    }
    if dropped > 0 {
        crate::counter!("span_ring_dropped_total").add(dropped);
    }
}

/// Snapshot of the ring buffer, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    lock_ring().records.iter().cloned().collect()
}

/// Drain the ring buffer: return every record (oldest first) and empty the
/// ring. The telemetry sampler's consuming read — records handed out here
/// were *not* dropped, so a pipeline that drains faster than spans arrive
/// keeps `span_ring_dropped_total` at zero.
pub fn drain_spans() -> Vec<SpanRecord> {
    lock_ring().records.drain(..).collect()
}

/// Empty the ring buffer (tests).
pub fn clear_spans() {
    lock_ring().records.clear();
}

/// Open a span with attributes: `span!("backup.table", table = name)` or
/// the shorthand `span!("backup.table", table, segment)` where the
/// identifier doubles as the attribute key.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_start($name)
    };
    ($name:expr, $($rest:tt)+) => {
        $crate::span!(@build $crate::span_start($name), $($rest)+)
    };
    (@build $s:expr, $key:ident = $value:expr, $($rest:tt)+) => {
        $crate::span!(@build $s.attr(stringify!($key), &$value), $($rest)+)
    };
    (@build $s:expr, $key:ident = $value:expr $(,)?) => {
        $s.attr(stringify!($key), &$value)
    };
    (@build $s:expr, $key:ident, $($rest:tt)+) => {
        $crate::span!(@build $s.attr(stringify!($key), &$key), $($rest)+)
    };
    (@build $s:expr, $key:ident $(,)?) => {
        $s.attr(stringify!($key), &$key)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive, set_enabled};

    #[test]
    fn spans_record_on_drop_with_outcome() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        let table = "t0";
        span!("obs.test", table, bytes_hint = 7).ok();
        {
            let mut s = span!("obs.test.fail");
            s.set_bytes(42);
            // dropped without ok(): outcome stays "error"
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].outcome, "ok");
        assert_eq!(spans[0].attrs[0], ("table", "t0".to_string()));
        assert_eq!(spans[0].attrs[1], ("bytes_hint", "7".to_string()));
        assert_eq!(spans[0].attr("table"), Some("t0"));
        assert_eq!(spans[1].outcome, "error");
        assert_eq!(spans[1].bytes, 42);
        clear_spans();
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _x = exclusive();
        set_enabled(false);
        clear_spans();
        let s = span!("obs.test.off", k = 1);
        assert!(!s.active());
        s.ok();
        assert!(recent_spans().is_empty());
        set_enabled(true);
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        set_span_capacity(4);
        let before = crate::counter_value("span_ring_dropped_total").unwrap_or(0);
        for i in 0..10u32 {
            span!("obs.test.ring", i).ok();
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), 4);
        let kept: Vec<String> = spans.iter().map(|s| s.attrs[0].1.clone()).collect();
        assert_eq!(kept, ["6", "7", "8", "9"]);
        let after = crate::counter_value("span_ring_dropped_total").unwrap();
        assert_eq!(after - before, 6, "10 spans into a 4-slot ring drop 6");
        set_span_capacity(super::DEFAULT_CAPACITY);
        clear_spans();
    }

    #[test]
    fn spans_carry_the_current_trace_id() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        let id = next_trace_id();
        assert_ne!(id, 0);
        assert_ne!(id, next_trace_id());
        set_trace_id(id);
        span!("obs.test.traced").ok();
        clear_trace_id();
        span!("obs.test.untraced").ok();
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace_id, id);
        assert_eq!(spans[1].trace_id, 0);
        // drain emptied the ring.
        assert!(recent_spans().is_empty());
    }

    #[test]
    fn emit_span_records_explicit_durations() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        emit_span(SpanRecord {
            name: "restart.phase",
            attrs: vec![("leaf", "p:0".into()), ("phase", "crc".into())],
            duration: Duration::from_nanos(1234),
            bytes: 0,
            outcome: "ok",
            trace_id: 9,
        });
        let spans = drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration, Duration::from_nanos(1234));
        assert_eq!(spans[0].trace_id, 9);
        assert_eq!(spans[0].attr("phase"), Some("crc"));
        // Disabled: emit is a no-op.
        set_enabled(false);
        emit_span(SpanRecord {
            name: "restart.phase",
            attrs: vec![],
            duration: Duration::ZERO,
            bytes: 0,
            outcome: "ok",
            trace_id: 0,
        });
        assert!(recent_spans().is_empty());
        set_enabled(true);
    }
}
