//! Structured spans: scoped timers with attributes, bytes, and an outcome,
//! recorded into a bounded ring buffer when dropped.
//!
//! The Drop-flush is load-bearing: a worker that errors mid-copy still
//! records its partial span (outcome `"error"`, duration up to the failure
//! point), which is what makes failed restarts diagnosable (ISSUE 3
//! satellite 1).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::enabled;

/// Default ring capacity; override with [`set_span_capacity`].
const DEFAULT_CAPACITY: usize = 256;

struct Ring {
    records: VecDeque<SpanRecord>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: Mutex<Ring> = Mutex::new(Ring {
        records: VecDeque::new(),
        capacity: DEFAULT_CAPACITY,
    });
    &RING
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(|p| p.into_inner())
}

/// A finished span as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `backup.table`.
    pub name: &'static str,
    /// Attribute key/value pairs in the order they were attached.
    pub attrs: Vec<(&'static str, String)>,
    /// Wall time between `span_start` and drop.
    pub duration: Duration,
    /// Bytes attributed to the span (0 if never set).
    pub bytes: u64,
    /// `"ok"` if [`Span::ok`] ran, otherwise `"error"`.
    pub outcome: &'static str,
}

/// An in-flight span. Records itself into the ring buffer when dropped;
/// call [`Span::ok`] on the success path so the outcome flips from the
/// default `"error"`.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    attrs: Vec<(&'static str, String)>,
    bytes: u64,
    outcome: &'static str,
}

/// Open a span. When instrumentation is disabled the span is inert: no
/// clock read, attributes are not formatted, and nothing is recorded.
#[inline]
pub fn span_start(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
        attrs: Vec::new(),
        bytes: 0,
        outcome: "error",
    }
}

impl Span {
    /// Attach an attribute. Skips the `Display` formatting entirely when
    /// the span is inert.
    #[inline]
    pub fn attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Span {
        if self.start.is_some() {
            self.attrs.push((key, value.to_string()));
        }
        self
    }

    /// Attach a byte count (e.g. payload copied under this span).
    #[inline]
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Add to the byte count.
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Whether this span is live (instrumentation was enabled at open).
    pub fn active(&self) -> bool {
        self.start.is_some()
    }

    /// Elapsed time so far (zero for an inert span).
    pub fn elapsed(&self) -> Duration {
        self.start.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Mark the span successful and record it (consumes the span; the
    /// actual recording happens in `Drop`).
    #[inline]
    pub fn ok(mut self) {
        self.outcome = "ok";
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let record = SpanRecord {
            name: self.name,
            attrs: std::mem::take(&mut self.attrs),
            duration: start.elapsed(),
            bytes: self.bytes,
            outcome: self.outcome,
        };
        let mut ring = lock_ring();
        while ring.records.len() >= ring.capacity {
            ring.records.pop_front(); // overflow drops the oldest span
        }
        ring.records.push_back(record);
    }
}

/// Resize the ring buffer (drops oldest records if shrinking).
pub fn set_span_capacity(capacity: usize) {
    let mut ring = lock_ring();
    ring.capacity = capacity.max(1);
    while ring.records.len() > ring.capacity {
        ring.records.pop_front();
    }
}

/// Snapshot of the ring buffer, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    lock_ring().records.iter().cloned().collect()
}

/// Empty the ring buffer (tests).
pub fn clear_spans() {
    lock_ring().records.clear();
}

/// Open a span with attributes: `span!("backup.table", table = name)` or
/// the shorthand `span!("backup.table", table, segment)` where the
/// identifier doubles as the attribute key.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_start($name)
    };
    ($name:expr, $($rest:tt)+) => {
        $crate::span!(@build $crate::span_start($name), $($rest)+)
    };
    (@build $s:expr, $key:ident = $value:expr, $($rest:tt)+) => {
        $crate::span!(@build $s.attr(stringify!($key), &$value), $($rest)+)
    };
    (@build $s:expr, $key:ident = $value:expr $(,)?) => {
        $s.attr(stringify!($key), &$value)
    };
    (@build $s:expr, $key:ident, $($rest:tt)+) => {
        $crate::span!(@build $s.attr(stringify!($key), &$key), $($rest)+)
    };
    (@build $s:expr, $key:ident $(,)?) => {
        $s.attr(stringify!($key), &$key)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive, set_enabled};

    #[test]
    fn spans_record_on_drop_with_outcome() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        let table = "t0";
        span!("obs.test", table, bytes_hint = 7).ok();
        {
            let mut s = span!("obs.test.fail");
            s.set_bytes(42);
            // dropped without ok(): outcome stays "error"
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].outcome, "ok");
        assert_eq!(spans[0].attrs[0], ("table", "t0".to_string()));
        assert_eq!(spans[0].attrs[1], ("bytes_hint", "7".to_string()));
        assert_eq!(spans[1].outcome, "error");
        assert_eq!(spans[1].bytes, 42);
        clear_spans();
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _x = exclusive();
        set_enabled(false);
        clear_spans();
        let s = span!("obs.test.off", k = 1);
        assert!(!s.active());
        s.ok();
        assert!(recent_spans().is_empty());
        set_enabled(true);
    }

    #[test]
    fn ring_overflow_keeps_newest() {
        let _x = exclusive();
        set_enabled(true);
        clear_spans();
        set_span_capacity(4);
        for i in 0..10u32 {
            span!("obs.test.ring", i).ok();
        }
        let spans = recent_spans();
        assert_eq!(spans.len(), 4);
        let kept: Vec<String> = spans.iter().map(|s| s.attrs[0].1.clone()).collect();
        assert_eq!(kept, ["6", "7", "8", "9"]);
        set_span_capacity(super::DEFAULT_CAPACITY);
        clear_spans();
    }
}
