//! Scuba-on-scuba: turn this process's own observability state into typed
//! events that can be ingested as ordinary rows.
//!
//! [`TelemetrySampler::sample`] snapshots the full metrics registry
//! (every series, including ones registered long after startup) and
//! drains the span ring, producing flat [`TelemetryEvent`]s. The cluster
//! layer batches these through the normal ingest path into the reserved
//! `__scuba_telemetry` table, so the system's dashboards become vectorized
//! queries over data stored the same way user data is — and survive leaf
//! restarts the same way user data does.
//!
//! Event shape (one row per event):
//!
//! | column     | meaning                                                  |
//! |------------|----------------------------------------------------------|
//! | `ts`       | logical sample timestamp (caller-supplied)               |
//! | `kind`     | `counter` / `gauge` / `quantile` / `span`                |
//! | `metric`   | series base name, or span name                           |
//! | `leaf`     | `leaf` label / span attr (`""` = process-wide)           |
//! | `op`       | `op` label / span attr (`backup`, `restore`, …)          |
//! | `phase`    | `phase` label / span attr, or quantile name (`p99`)      |
//! | `value`    | metric value, quantile estimate (ns), span duration (ns) |
//! | `trace_id` | restart trace id (spans only; 0 = untraced)              |
//! | `outcome`  | span outcome (`ok`/`error`), `""` for metrics            |

use crate::metrics::{registry_snapshot, Histogram, MetricSnapshot};
use crate::span::{drain_spans, SpanRecord};

/// One flat self-telemetry event (see the module table).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Logical sample timestamp, caller-supplied — becomes the row time.
    pub ts: i64,
    /// `counter` / `gauge` / `quantile` / `span`.
    pub kind: &'static str,
    /// Metric base name (labels stripped), or the span name.
    pub metric: String,
    /// `leaf` label / attr value (`""` when process-wide).
    pub leaf: String,
    /// `op` label / attr value (`""` when absent).
    pub op: String,
    /// `phase` label / attr value, or the quantile name (`p50`…).
    pub phase: String,
    /// Metric value, quantile estimate in ns, or span duration in ns.
    pub value: i64,
    /// Trace id (spans; 0 = untraced).
    pub trace_id: u64,
    /// Span outcome (`""` for metric events).
    pub outcome: String,
}

/// Quantiles published for every histogram, as `(name, q)`.
pub const TELEMETRY_QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)];

/// Parse a full series key `name{k1="v1",…}` into the base name and its
/// label pairs (unescaped). Labels other than the well-known ones are
/// folded back into the returned metric name so distinct series never
/// collapse into one event stream.
fn parse_series(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key.to_string(), Vec::new());
    };
    let base = &key[..brace];
    let body = key[brace..].trim_start_matches('{').trim_end_matches('}');
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Key up to '='.
        let mut k = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            k.push(c);
            chars.next();
        }
        if chars.next().is_none() {
            break; // no '=': done (or malformed tail — ignore)
        }
        // Quoted, escaped value.
        let mut v = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            while let Some(c) = chars.next() {
                match c {
                    '\\' => {
                        match chars.next() {
                            Some('n') => v.push('\n'),
                            Some(other) => v.push(other),
                            None => break,
                        };
                    }
                    '"' => break,
                    other => v.push(other),
                }
            }
        }
        labels.push((k, v));
        match chars.next() {
            Some(',') => continue,
            _ => break,
        }
    }
    (base.to_string(), labels)
}

/// Split parsed labels into (leaf, op, phase, leftover-suffix). Unknown
/// labels become a stable `|k=v` suffix on the metric name.
fn route_labels(labels: Vec<(String, String)>) -> (String, String, String, String) {
    let mut leaf = String::new();
    let mut op = String::new();
    let mut phase = String::new();
    let mut suffix = String::new();
    for (k, v) in labels {
        match k.as_str() {
            "leaf" => leaf = v,
            "op" => op = v,
            "phase" => phase = v,
            _ => {
                suffix.push('|');
                suffix.push_str(&k);
                suffix.push('=');
                suffix.push_str(&v);
            }
        }
    }
    (leaf, op, phase, suffix)
}

/// Samples the process's own observability state into [`TelemetryEvent`]s.
///
/// Stateless apart from its quantile list: every [`sample`] call reads the
/// registry in full (values are cumulative, so consumers diff or `Max`
/// per timestamp) and *drains* the span ring (spans are handed over
/// exactly once — whoever samples owns the spans).
///
/// [`sample`]: TelemetrySampler::sample
#[derive(Debug, Clone)]
pub struct TelemetrySampler {
    quantiles: Vec<(&'static str, f64)>,
}

impl Default for TelemetrySampler {
    fn default() -> Self {
        TelemetrySampler::new()
    }
}

impl TelemetrySampler {
    /// Sampler publishing the standard p50/p99/p999 quantiles.
    pub fn new() -> TelemetrySampler {
        TelemetrySampler {
            quantiles: TELEMETRY_QUANTILES.to_vec(),
        }
    }

    /// Snapshot the registry and drain the span ring, stamping every
    /// event with the logical timestamp `ts`.
    pub fn sample(&self, ts: i64) -> Vec<TelemetryEvent> {
        let mut events = self.sample_registry(ts);
        events.extend(self.drain_ring(ts));
        events
    }

    /// Registry half of [`sample`](TelemetrySampler::sample): one event
    /// per counter/gauge series, `_count`/`_sum` plus quantile events per
    /// histogram.
    pub fn sample_registry(&self, ts: i64) -> Vec<TelemetryEvent> {
        let mut events = Vec::new();
        for (key, snap) in registry_snapshot() {
            let (base, labels) = parse_series(&key);
            let (leaf, op, phase, suffix) = route_labels(labels);
            let metric = |name: String| TelemetryEvent {
                ts,
                kind: "counter",
                metric: name,
                leaf: leaf.clone(),
                op: op.clone(),
                phase: phase.clone(),
                value: 0,
                trace_id: 0,
                outcome: String::new(),
            };
            match snap {
                MetricSnapshot::Counter(v) => {
                    let mut e = metric(format!("{base}{suffix}"));
                    e.value = v.min(i64::MAX as u64) as i64;
                    events.push(e);
                }
                MetricSnapshot::Gauge(v) => {
                    let mut e = metric(format!("{base}{suffix}"));
                    e.kind = "gauge";
                    e.value = v;
                    events.push(e);
                }
                MetricSnapshot::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let mut c = metric(format!("{base}_count{suffix}"));
                    c.value = count.min(i64::MAX as u64) as i64;
                    events.push(c);
                    let mut s = metric(format!("{base}_sum{suffix}"));
                    s.value = sum.min(i64::MAX as u64) as i64;
                    events.push(s);
                    if count > 0 {
                        for &(name, q) in &self.quantiles {
                            if let Some(est) = quantile_of(&buckets[..], count, q) {
                                let mut e = metric(format!("{base}{suffix}"));
                                e.kind = "quantile";
                                e.phase = name.to_string();
                                e.value = est.min(i64::MAX as u64) as i64;
                                events.push(e);
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Span half of [`sample`](TelemetrySampler::sample): drains the ring
    /// (consuming — each span is emitted exactly once).
    pub fn drain_ring(&self, ts: i64) -> Vec<TelemetryEvent> {
        drain_spans()
            .into_iter()
            .map(|s| span_event(ts, &s))
            .collect()
    }
}

/// Quantile over raw bucket counts (same walk as [`Histogram::quantile`],
/// reusable on a snapshot instead of the live atomics).
fn quantile_of(buckets: &[u64], total: u64, q: f64) -> Option<u64> {
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = cumulative;
        cumulative += n;
        if cumulative >= target {
            if i == 0 {
                return Some(0);
            }
            let lo = 1u64 << (i - 1);
            let hi = Histogram::bucket_bound(i).unwrap_or(u64::MAX);
            let frac = (target - before) as f64 / n as f64;
            return Some(
                (lo as f64 + frac * (hi - lo) as f64)
                    .min(hi as f64)
                    .max(lo as f64) as u64,
            );
        }
    }
    None
}

/// Convert one drained span record into an event.
fn span_event(ts: i64, s: &SpanRecord) -> TelemetryEvent {
    TelemetryEvent {
        ts,
        kind: "span",
        metric: s.name.to_string(),
        leaf: s.attr("leaf").unwrap_or("").to_string(),
        op: s.attr("op").unwrap_or("").to_string(),
        phase: s.attr("phase").unwrap_or("").to_string(),
        value: s.duration.as_nanos().min(i64::MAX as u128) as i64,
        trace_id: s.trace_id,
        outcome: s.outcome.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exclusive, set_enabled};
    use std::time::Duration;

    #[test]
    fn parse_series_handles_labels_and_escapes() {
        assert_eq!(parse_series("plain"), ("plain".into(), vec![]));
        let (base, labels) = parse_series("m{leaf=\"p:0\",op=\"a,b\\\"c\"}");
        assert_eq!(base, "m");
        assert_eq!(
            labels,
            vec![
                ("leaf".into(), "p:0".into()),
                ("op".into(), "a,b\"c".into())
            ]
        );
    }

    #[test]
    fn registry_events_route_labels() {
        let _x = exclusive();
        set_enabled(true);
        crate::labeled_gauge("obs_tel_demo_depth", &[("leaf", "px:3")]).set(11);
        crate::labeled_counter(
            "obs_tel_demo_ns_total",
            &[("op", "backup"), ("phase", "crc")],
        )
        .add(5);
        crate::labeled_counter("obs_tel_demo_hits_total", &[("site", "s1")]).add(2);
        let events = TelemetrySampler::new().sample_registry(7);
        let g = events
            .iter()
            .find(|e| e.metric == "obs_tel_demo_depth")
            .unwrap();
        assert_eq!(
            (g.kind, g.leaf.as_str(), g.value, g.ts),
            ("gauge", "px:3", 11, 7)
        );
        let c = events
            .iter()
            .find(|e| e.metric == "obs_tel_demo_ns_total")
            .unwrap();
        assert_eq!((c.op.as_str(), c.phase.as_str()), ("backup", "crc"));
        assert!(c.value >= 5);
        // Unknown labels stay distinguishable via the folded suffix.
        assert!(events
            .iter()
            .any(|e| e.metric == "obs_tel_demo_hits_total|site=s1"));
    }

    #[test]
    fn histograms_emit_count_sum_and_quantiles() {
        let _x = exclusive();
        set_enabled(true);
        let h = crate::histogram("obs_tel_demo_lat_ns");
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        let events = TelemetrySampler::new().sample_registry(1);
        let count = events
            .iter()
            .find(|e| e.metric == "obs_tel_demo_lat_ns_count")
            .unwrap();
        assert!(count.value >= 5);
        assert!(events.iter().any(|e| e.metric == "obs_tel_demo_lat_ns_sum"));
        for q in ["p50", "p99", "p999"] {
            let e = events
                .iter()
                .find(|e| e.metric == "obs_tel_demo_lat_ns" && e.phase == q)
                .unwrap_or_else(|| panic!("missing {q}"));
            assert_eq!(e.kind, "quantile");
            assert!(e.value > 0);
        }
    }

    #[test]
    fn spans_drain_exactly_once() {
        let _x = exclusive();
        set_enabled(true);
        crate::clear_spans();
        crate::emit_span(crate::SpanRecord {
            name: "restart.phase",
            attrs: vec![
                ("leaf", "px:1".into()),
                ("op", "restore".into()),
                ("phase", "crc".into()),
            ],
            duration: Duration::from_nanos(77),
            bytes: 0,
            outcome: "ok",
            trace_id: 42,
        });
        let sampler = TelemetrySampler::new();
        let events = sampler.drain_ring(3);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(
            (
                e.kind,
                e.metric.as_str(),
                e.leaf.as_str(),
                e.op.as_str(),
                e.phase.as_str()
            ),
            ("span", "restart.phase", "px:1", "restore", "crc")
        );
        assert_eq!((e.value, e.trace_id, e.outcome.as_str()), (77, 42, "ok"));
        // Consumed: a second drain sees nothing.
        assert!(sampler.drain_ring(4).is_empty());
    }
}
