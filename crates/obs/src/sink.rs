//! Exposition sinks: Prometheus text format, a hand-rolled JSON snapshot,
//! and an offline `promtool`-style lint (no regex crate — hand-coded
//! scanners only, per the no-new-dependencies rule).

use std::collections::BTreeMap;

use crate::metrics::{registry, Histogram, Metric};

/// Split a full series key into `(base_name, labels_with_braces)`.
fn split_series(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Prometheus counter names end in `_total`; labelled families already
/// follow the convention, bare names get the suffix appended here.
fn counter_exposition_name(base: &str) -> String {
    if base.ends_with("_total") {
        base.to_string()
    } else {
        format!("{base}_total")
    }
}

/// Full Prometheus text exposition of every registered metric.
pub fn prometheus_text() -> String {
    prometheus_text_for("")
}

/// Prometheus text exposition restricted to series whose base name starts
/// with `prefix` (empty prefix = everything). The filter keeps golden-file
/// tests stable while other tests in the same process grow the registry.
pub fn prometheus_text_for(prefix: &str) -> String {
    let reg = registry().read().unwrap_or_else(|p| p.into_inner());
    // Group series by base name so each family gets exactly one TYPE line.
    let mut families: BTreeMap<String, Vec<(String, Metric)>> = BTreeMap::new();
    for (key, metric) in reg.iter() {
        let (base, labels) = split_series(key);
        if !base.starts_with(prefix) {
            continue;
        }
        families
            .entry(base.to_string())
            .or_default()
            .push((labels.to_string(), *metric));
    }
    drop(reg);

    let mut out = String::new();
    for (base, series) in &families {
        match series[0].1 {
            Metric::Counter(_) => {
                let name = counter_exposition_name(base);
                out.push_str(&format!("# TYPE {name} counter\n"));
                for (labels, metric) in series {
                    if let Metric::Counter(c) = metric {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                }
            }
            Metric::Gauge(_) => {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                for (labels, metric) in series {
                    if let Metric::Gauge(g) = metric {
                        out.push_str(&format!("{base}{labels} {}\n", g.get()));
                    }
                }
            }
            Metric::Histogram(_) => {
                out.push_str(&format!("# TYPE {base} histogram\n"));
                for (labels, metric) in series {
                    if let Metric::Histogram(h) = metric {
                        write_histogram(&mut out, base, labels, h);
                    }
                }
            }
        }
    }
    out
}

/// Emit cumulative `_bucket` lines (only boundaries with observations,
/// plus the mandatory `+Inf`), then `_sum` and `_count`.
fn write_histogram(out: &mut String, base: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cumulative += n;
        if n == 0 {
            continue;
        }
        let le = match Histogram::bucket_bound(i) {
            Some(bound) => bound.to_string(),
            None => "+Inf".to_string(),
        };
        if le == "+Inf" {
            continue; // emitted unconditionally below with the final total
        }
        out.push_str(&format!(
            "{base}_bucket{} {cumulative}\n",
            merge_le_label(labels, &le)
        ));
    }
    out.push_str(&format!(
        "{base}_bucket{} {}\n",
        merge_le_label(labels, "+Inf"),
        h.count()
    ));
    out.push_str(&format!("{base}_sum{labels} {}\n", h.sum()));
    out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
}

/// Insert `le="…"` into an existing label set (or create one).
fn merge_le_label(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{{{inner},le=\"{le}\"}}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON snapshot of the whole registry:
/// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,"sum":..,"buckets":[[le,cumulative],..]}}}`.
/// Keys are the full series names (labels included).
pub fn json_snapshot() -> String {
    let reg = registry().read().unwrap_or_else(|p| p.into_inner());
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (key, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => counters.push(format!("\"{}\": {}", json_escape(key), c.get())),
            Metric::Gauge(g) => gauges.push(format!("\"{}\": {}", json_escape(key), g.get())),
            Metric::Histogram(h) => {
                let counts = h.bucket_counts();
                let mut cumulative = 0u64;
                let mut buckets = Vec::new();
                for (i, &n) in counts.iter().enumerate() {
                    cumulative += n;
                    if n == 0 {
                        continue;
                    }
                    let le = match Histogram::bucket_bound(i) {
                        Some(bound) => format!("\"{bound}\""),
                        None => "\"+Inf\"".to_string(),
                    };
                    buckets.push(format!("[{le}, {cumulative}]"));
                }
                histograms.push(format!(
                    "\"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                    json_escape(key),
                    h.count(),
                    h.sum(),
                    buckets.join(", ")
                ));
            }
        }
    }
    drop(reg);
    format!(
        "{{\n  \"counters\": {{\n    {}\n  }},\n  \"gauges\": {{\n    {}\n  }},\n  \"histograms\": {{\n    {}\n  }}\n}}\n",
        counters.join(",\n    "),
        gauges.join(",\n    "),
        histograms.join(",\n    ")
    )
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_pair(pair: &str) -> bool {
    let Some(eq) = pair.find('=') else {
        return false;
    };
    let (key, value) = (&pair[..eq], &pair[eq + 1..]);
    if key.is_empty() || !valid_metric_name(key) {
        return false;
    }
    value.len() >= 2 && value.starts_with('"') && value.ends_with('"')
}

/// Split a label body `k="v",k2="v2"` on commas that sit outside quotes.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut pairs = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for ch in body.chars() {
        if escaped {
            current.push(ch);
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_quotes => {
                current.push(ch);
                escaped = true;
            }
            '"' => {
                current.push(ch);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    pairs
}

/// Offline `promtool check metrics`-style lint over a text exposition.
/// Returns a list of problems (empty = clean). Checks: well-formed `# TYPE`
/// lines with known types, valid metric/label syntax on every sample,
/// numeric values, every sample preceded by a TYPE declaration for its
/// family, no duplicate TYPE lines, and counter families named `*_total`.
pub fn promlint(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut declared: BTreeMap<String, String> = BTreeMap::new(); // family -> type
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || (line.starts_with('#') && !line.starts_with("# TYPE")) {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                problems.push(format!("line {lineno}: malformed TYPE line: {line}"));
                continue;
            };
            if !valid_metric_name(name) {
                problems.push(format!("line {lineno}: invalid metric name `{name}`"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                problems.push(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            if kind == "counter" && !name.ends_with("_total") {
                problems.push(format!(
                    "line {lineno}: counter `{name}` should end in _total"
                ));
            }
            if declared
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                problems.push(format!("line {lineno}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => {
                problems.push(format!("line {lineno}: sample missing value: {line}"));
                continue;
            }
        };
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            problems.push(format!("line {lineno}: non-numeric value `{value}`"));
        }
        let (name, labels) = split_series(series);
        if !valid_metric_name(name) {
            problems.push(format!("line {lineno}: invalid metric name `{name}`"));
        }
        if !labels.is_empty() {
            if !labels.starts_with('{') || !labels.ends_with('}') {
                problems.push(format!("line {lineno}: malformed label block `{labels}`"));
            } else {
                for pair in split_label_pairs(&labels[1..labels.len() - 1]) {
                    if !valid_label_pair(&pair) {
                        problems.push(format!("line {lineno}: malformed label pair `{pair}`"));
                    }
                }
            }
        }
        // A histogram family declares `x` but emits `x_bucket/_sum/_count`.
        let family = declared.contains_key(name).then_some(name).or_else(|| {
            ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                let stem = name.strip_suffix(suffix)?;
                (declared.get(stem).map(String::as_str) == Some("histogram")).then_some(stem)
            })
        });
        if family.is_none() {
            problems.push(format!(
                "line {lineno}: sample `{name}` has no preceding TYPE declaration"
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_accepts_well_formed_exposition() {
        let text = "# TYPE foo_total counter\nfoo_total{a=\"x,y\"} 3\n\
                    # TYPE bar gauge\nbar 0\n\
                    # TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 2\n";
        assert_eq!(promlint(text), Vec::<String>::new());
    }

    #[test]
    fn lint_flags_problems() {
        let text = "# TYPE foo counter\n\
                    bad name 1\n\
                    orphan 2\n\
                    foo{k=} nope\n";
        let problems = promlint(text);
        assert!(
            problems.iter().any(|p| p.contains("should end in _total")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("no preceding TYPE")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("non-numeric value")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("malformed label pair")),
            "{problems:?}"
        );
    }

    #[test]
    fn own_exposition_passes_lint() {
        let _x = crate::exclusive();
        crate::set_enabled(true);
        crate::counter("obs_sink_demo_ops_total").add(2);
        crate::gauge("obs_sink_demo_depth").set(-3);
        crate::histogram("obs_sink_demo_lat_ns").observe(100);
        crate::labeled_counter("obs_sink_demo_hits_total", &[("site", "a,b\"c")]).inc();
        let text = prometheus_text();
        assert_eq!(promlint(&text), Vec::<String>::new(), "{text}");
        let json = json_snapshot();
        assert!(json.contains("\"obs_sink_demo_depth\": -3"), "{json}");
        assert!(json.contains("obs_sink_demo_lat_ns"), "{json}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let _x = crate::exclusive();
        crate::set_enabled(true);
        let h = crate::histogram("obs_sink_cumulative_ns");
        h.observe(0);
        h.observe(1);
        h.observe(1);
        h.observe(5); // bucket 3 (le=7)
        let text = prometheus_text_for("obs_sink_cumulative_ns");
        assert!(
            text.contains("obs_sink_cumulative_ns_bucket{le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("obs_sink_cumulative_ns_bucket{le=\"1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("obs_sink_cumulative_ns_bucket{le=\"7\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("obs_sink_cumulative_ns_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("obs_sink_cumulative_ns_sum 7"), "{text}");
        assert!(text.contains("obs_sink_cumulative_ns_count 4"), "{text}");
    }
}
