//! scuba-obs self-tests (ISSUE 3 satellite 2): concurrent hammering with
//! exact totals, histogram bucket boundaries, ring-buffer overflow, and a
//! Prometheus exposition golden file.
//!
//! The registry and ring are process-global, so every test that toggles
//! the enable switch or asserts on global state holds `obs::exclusive()`.

use std::sync::Barrier;
use std::time::Duration;

use scuba_obs as obs;

#[test]
fn concurrent_counter_and_histogram_totals_are_exact() {
    let _x = obs::exclusive();
    obs::set_enabled(true);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let ctr = obs::counter("obs_it_hammer_ops");
    let gau = obs::gauge("obs_it_hammer_depth");
    let hist = obs::histogram("obs_it_hammer_lat_ns");
    let (c0, g0, h0, s0) = (ctr.get(), gau.get(), hist.count(), hist.sum());
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    ctr.inc();
                    gau.inc();
                    hist.observe(i % 1024);
                    if i % 2 == 0 {
                        gau.dec();
                    }
                }
            });
        }
    });
    let n = (THREADS as u64) * PER_THREAD;
    assert_eq!(ctr.get() - c0, n, "every increment must land exactly once");
    assert_eq!(hist.count() - h0, n);
    // Sum of (i % 1024) over one thread's loop, times THREADS.
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 1024).sum();
    assert_eq!(hist.sum() - s0, per_thread_sum * THREADS as u64);
    // Each thread nets +PER_THREAD - ceil(PER_THREAD/2) on the gauge.
    let per_thread_net = (PER_THREAD - PER_THREAD.div_ceil(2)) as i64;
    assert_eq!(gau.get() - g0, per_thread_net * THREADS as i64);
}

#[test]
fn histogram_bucket_boundaries() {
    let _x = obs::exclusive();
    obs::set_enabled(true);
    let h = obs::histogram("obs_it_boundaries_ns");
    // One observation per interesting boundary: zero, each power of two and
    // its predecessor, and the overflow bucket.
    h.observe(0);
    for i in 1..obs::HISTOGRAM_BUCKETS - 1 {
        let bound = obs::Histogram::bucket_bound(i).unwrap();
        h.observe(bound); // largest value bucket i admits
        h.observe(bound + 1); // smallest value of bucket i + 1
    }
    let counts = h.bucket_counts();
    assert_eq!(counts[0], 1, "zero bucket");
    // Bucket 1 admits only the value 1, observed once as bound(1).
    assert_eq!(counts[1], 1);
    for (i, &c) in counts.iter().enumerate().take(63).skip(2) {
        assert_eq!(c, 2, "bucket {i} gets its own bound plus the previous +1");
    }
    // Overflow: bound(62)+1 = 2^62 lands in the +Inf slot.
    assert_eq!(counts[63], 1);
}

#[test]
fn ring_buffer_overflow_keeps_newest_spans() {
    let _x = obs::exclusive();
    obs::set_enabled(true);
    obs::clear_spans();
    obs::set_span_capacity(8);
    for i in 0..40u32 {
        let mut s = obs::span_start("obs_it.ring").attr("seq", i);
        s.set_bytes(u64::from(i));
        s.ok();
    }
    let spans = obs::recent_spans();
    assert_eq!(spans.len(), 8);
    let seqs: Vec<u64> = spans.iter().map(|s| s.bytes).collect();
    assert_eq!(seqs, (32..40).collect::<Vec<u64>>(), "newest survive");
    assert!(spans.iter().all(|s| s.outcome == "ok"));
    obs::set_span_capacity(256);
    obs::clear_spans();
}

#[test]
fn span_drop_flushes_partial_data_on_error_path() {
    let _x = obs::exclusive();
    obs::set_enabled(true);
    obs::clear_spans();
    let result: Result<(), &str> = (|| {
        let mut s = obs::span_start("obs_it.failing").attr("table", "t3");
        s.add_bytes(4096);
        std::thread::sleep(Duration::from_millis(2));
        Err("worker died mid-copy")? // span dropped here, not ok()'d
    })();
    assert!(result.is_err());
    let spans = obs::recent_spans();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].outcome, "error");
    assert_eq!(spans[0].bytes, 4096, "partial byte count survives");
    assert!(
        spans[0].duration >= Duration::from_millis(2),
        "partial duration survives"
    );
    obs::clear_spans();
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let _x = obs::exclusive();
    obs::set_enabled(true);
    // A fixed mini-registry under the `golden_` prefix; the filtered
    // exposition keeps this stable while other tests grow the registry.
    obs::counter("golden_restarts_total").add(3);
    obs::labeled_counter(
        "golden_restarts_total",
        &[("op", "backup"), ("phase", "crc")],
    )
    .add(41);
    obs::gauge("golden_queue_depth").set(-2);
    obs::labeled_gauge("golden_queue_depth", &[("leaf", "pfx:0")]).set(7);
    let h = obs::histogram("golden_copy_lat_ns");
    for v in [0u64, 1, 4, 5, 1000, 1 << 62] {
        h.observe(v);
    }
    let text = obs::prometheus_text_for("golden_");
    let golden = include_str!("golden/exposition.prom");
    assert_eq!(text, golden, "exposition drifted from the golden file");
    assert_eq!(obs::promlint(&text), Vec::<String>::new());
}

#[test]
fn disabled_metrics_do_not_move() {
    let _x = obs::exclusive();
    obs::set_enabled(false);
    let c = obs::counter("obs_it_disabled_ops");
    let g = obs::gauge("obs_it_disabled_depth");
    let h = obs::histogram("obs_it_disabled_ns");
    c.add(10);
    g.set(5);
    h.observe(99);
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    obs::set_enabled(true);
}
