//! # scuba — Fast Database Restarts, reproduced
//!
//! A from-scratch Rust reproduction of *Fast Database Restarts at
//! Facebook* (Goel et al., SIGMOD 2014): an in-memory column store in the
//! shape of Scuba, plus the paper's contribution — restarting the server
//! process **without losing its in-memory data**, by parking the data in
//! POSIX shared memory across the process boundary.
//!
//! This crate is the facade: it re-exports every subsystem under one
//! namespace and hosts the workspace's examples and integration tests.
//!
//! ## The 60-second tour
//!
//! ```
//! use scuba::leaf::{LeafConfig, LeafServer};
//! use scuba::columnstore::Row;
//! use scuba::query::Query;
//!
//! # let dir = std::env::temp_dir().join(format!("scuba_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! // A leaf server with a disk backup and a shared-memory namespace.
//! let config = LeafConfig::new(0, format!("doc{}", std::process::id()), &dir);
//! let mut server = LeafServer::new(config.clone()).unwrap();
//!
//! // Ingest some rows and query them.
//! let rows: Vec<Row> = (0..1000).map(|i| Row::at(i).with("status", 200i64)).collect();
//! server.add_rows("requests", &rows, 0).unwrap();
//! assert_eq!(server.query(&Query::new("requests", 0, 1000)).unwrap().rows_matched, 1000);
//!
//! // Planned upgrade: park the data in shared memory and exit...
//! server.shutdown_to_shm(1000).unwrap();
//! drop(server);
//!
//! // ...and the replacement process recovers it at memory speed.
//! let (server, outcome) = LeafServer::start(config, 1000, None).unwrap();
//! assert!(outcome.is_memory());
//! assert_eq!(server.total_rows(), 1000);
//! # server.namespace().unlink_all(4);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`columnstore`] | `scuba-columnstore` | row blocks, row block columns, compression (Figures 2–3) |
//! | [`shmem`] | `scuba-shmem` | POSIX shared-memory segments, leaf metadata, valid bit (Figure 4) |
//! | [`restart`] | `scuba-restart` | the shutdown/restore protocol and state machines (Figures 5–7) |
//! | [`diskstore`] | `scuba-diskstore` | row-format disk backup (slow path) + shm-image format (§6) |
//! | [`leaf`] | `scuba-leaf` | the leaf server lifecycle |
//! | [`query`] | `scuba-query` | filters, aggregation, partial-result merging |
//! | [`ingest`] | `scuba-ingest` | Scribe, tailers, two-random-choice placement, workloads |
//! | [`cluster`] | `scuba-cluster` | machines, rollover orchestration, dashboard, paper-scale simulator |
//! | [`obs`] | `scuba-obs` | metrics registry, restart tracing, phase breakdowns, exposition sinks |

pub use scuba_cluster as cluster;
pub use scuba_columnstore as columnstore;
pub use scuba_diskstore as diskstore;
pub use scuba_ingest as ingest;
pub use scuba_leaf as leaf;
pub use scuba_obs as obs;
pub use scuba_query as query;
pub use scuba_restart as restart;
pub use scuba_shmem as shmem;

/// Convenience prelude: the types most programs touch.
pub mod prelude {
    pub use scuba_cluster::{Cluster, ClusterConfig, HostedCluster, LeafHost, RolloverConfig};
    pub use scuba_columnstore::{ColumnType, Row, Table, Value};
    pub use scuba_ingest::{Scribe, Tailer, TailerConfig, WorkloadKind, WorkloadSpec};
    pub use scuba_leaf::{LeafConfig, LeafServer, RecoveryOutcome};
    pub use scuba_query::{parse_query, AggSpec, CmpOp, Filter, Query};
    pub use scuba_restart::{backup_to_shm, restore_from_shm, ShmPersistable};
    pub use scuba_shmem::{ShmNamespace, ShmSegment};
}
