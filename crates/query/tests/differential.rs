//! Differential tests: the vectorized executor must return results
//! identical to the row-wise oracle — groups, aggregate states, and every
//! scan statistic — across encodings, null patterns, mapped/heap
//! backings, and arbitrary queries. Zone-map pruning must never change
//! answers (a zone-stripped table gives the same groups/row counts).

use std::sync::Arc;

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

use scuba_columnstore::scan::remap_block;
use scuba_columnstore::{Row, Table, Value, TIME_COLUMN};
use scuba_query::{execute, execute_vectorized, AggSpec, CmpOp, Filter, Query};

/// Rows exercising every column type with independent null patterns:
/// `n` (int, sometimes null), `d` (double, sometimes null), `s` (string
/// via dictionary), `tags` (string set), plus schema drift (`extra` only
/// on some rows).
fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    vec(
        (
            0i64..2000,             // time
            option::of(-50i64..50), // n
            option::of(0i32..400),  // d (scaled to double)
            option::of(0u8..6),     // s -> "s<k>"
            option::of(0u8..3),     // tags
            any::<bool>(),          // extra present?
        ),
        1..250,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(t, n, d, s, tags, extra)| {
                let mut row = Row::at(t);
                if let Some(n) = n {
                    row.set("n", n);
                }
                if let Some(d) = d {
                    row.set("d", d as f64 / 8.0);
                }
                if let Some(s) = s {
                    row.set("s", format!("s{s}"));
                }
                if let Some(k) = tags {
                    row.set("tags", Value::set([format!("t{k}"), "all".to_string()]));
                }
                if extra {
                    row.set("extra", 1i64);
                }
                row
            })
            .collect()
    })
}

fn arb_literal() -> impl Strategy<Value = Value> {
    (0u8..5, -60i64..60, 0i32..400, 0u8..8, 0u8..3).prop_map(|(kind, i, d, s, t)| match kind {
        0 => Value::Int(i),
        1 => Value::Double(d as f64 / 8.0),
        2 => Value::Str(format!("s{s}")),
        3 => Value::Str("all".into()),
        _ => Value::set([format!("t{t}"), "all".to_string()]),
    })
}

const OPS: [CmpOp; 7] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Contains,
];

const COLUMNS: [&str; 7] = ["n", "d", "s", "tags", "extra", "missing", TIME_COLUMN];

fn arb_op() -> impl Strategy<Value = CmpOp> {
    (0usize..OPS.len()).prop_map(|i| OPS[i])
}

fn arb_column() -> impl Strategy<Value = &'static str> {
    (0usize..COLUMNS.len()).prop_map(|i| COLUMNS[i])
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        (0i64..1000, 1i64..2100),
        vec((arb_column(), arb_op(), arb_literal()), 0..3),
        option::of(arb_column()),
        option::of(1i64..500),
    )
        .prop_map(|((from, span), filters, group_by, bucket)| {
            let mut q = Query::new("t", from, from + span).aggregates(vec![
                AggSpec::Count,
                AggSpec::Sum("n".into()),
                AggSpec::Min("d".into()),
                AggSpec::Max("n".into()),
                AggSpec::Avg("d".into()),
                AggSpec::p50("d"),
                AggSpec::CountDistinct("s".into()),
            ]);
            for (c, op, lit) in filters {
                q = q.filter(Filter {
                    column: c.to_string(),
                    op,
                    literal: lit,
                });
            }
            if let Some(g) = group_by {
                q = q.group_by(g);
            }
            if let Some(b) = bucket {
                q = q.bucket_secs(b);
            }
            q
        })
}

/// Build a table sealing every `seal_every` rows (several blocks, varied
/// encodings per block), leaving any tail unsealed.
fn build_table(rows: &[Row], seal_every: usize) -> Table {
    let mut t = Table::new("t", 0);
    for (i, r) in rows.iter().enumerate() {
        t.append(r, 0).unwrap();
        if (i + 1) % seal_every == 0 {
            t.seal(0).unwrap();
        }
    }
    t
}

/// The same table with every sealed block rebuilt onto a shared mapped
/// backing (the shm-resident layout).
fn map_table(t: &Table) -> Table {
    let blocks = t
        .blocks()
        .iter()
        .map(|b| Arc::new(remap_block(b).unwrap()))
        .collect();
    Table::from_blocks("t", blocks, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vectorized == row-wise, bit for bit, over heap and mapped backings.
    #[test]
    fn vectorized_equals_row_wise(rows in arb_rows(), q in arb_query(), seal_every in 20usize..120) {
        let heap = build_table(&rows, seal_every);
        let row_wise = execute(&heap, &q).unwrap();
        let vec_wise = execute_vectorized(&heap, &q).unwrap();
        prop_assert_eq!(&row_wise, &vec_wise);

        let mapped = map_table(&heap);
        let vec_mapped = execute_vectorized(&mapped, &q).unwrap();
        let row_mapped = execute(&mapped, &q).unwrap();
        prop_assert_eq!(&row_mapped, &vec_mapped);
        // Backing never changes answers (the mapped table holds only the
        // sealed blocks, so compare against a sealed-only heap table).
        let heap_sealed = Table::from_blocks("t", heap.blocks().to_vec(), 0);
        prop_assert_eq!(&execute(&heap_sealed, &q).unwrap(), &vec_mapped);
    }

    /// Zone-map pruning is invisible: stripping zones changes only the
    /// pruning counters, never groups or matched rows.
    #[test]
    fn zone_pruning_never_changes_answers(rows in arb_rows(), q in arb_query(), seal_every in 20usize..120) {
        let t = build_table(&rows, seal_every);
        let stripped_blocks = t
            .blocks()
            .iter()
            .map(|b| {
                Arc::new(
                    scuba_columnstore::RowBlock::from_parts(
                        *b.header(),
                        b.schema().clone(),
                        b.columns().to_vec(),
                    )
                    .unwrap(),
                )
            })
            .collect();
        let stripped = Table::from_blocks("t", stripped_blocks, 0);
        let sealed = Table::from_blocks("t", t.blocks().to_vec(), 0);

        let with_zones = execute_vectorized(&sealed, &q).unwrap();
        let without = execute_vectorized(&stripped, &q).unwrap();
        prop_assert_eq!(&with_zones.groups, &without.groups);
        prop_assert_eq!(with_zones.rows_matched, without.rows_matched);
        // (Missing-column and cross-type pruning need no statistics, so
        // the stripped table may still prune some blocks.)
        prop_assert!(without.blocks_zonemap_pruned <= with_zones.blocks_zonemap_pruned);
        // Pruned blocks can only reduce work, never add it.
        prop_assert!(with_zones.rows_scanned <= without.rows_scanned);
    }
}
