//! Property-based tests for the query engine: partial-result merging must
//! be exact (splitting data across leaves never changes answers), pruning
//! must never change results, and aggregates must match naive reference
//! implementations.

use proptest::collection::vec;
use proptest::prelude::*;

use scuba_columnstore::{Row, Table, Value};
use scuba_query::{execute, merge_partials, AggSpec, CmpOp, Filter, GroupKey, Query};

/// Arbitrary event rows over a small key space so groups collide.
fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    vec((0i64..1000, 0i64..5, 0u8..4, 0i64..100), 1..300).prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(t, group, opt, v)| {
                let mut row = Row::at(t).with("g", group);
                // Some rows omit the value column.
                if opt != 0 {
                    row.set("v", v);
                }
                row
            })
            .collect()
    })
}

fn table_from(name: &str, rows: &[Row]) -> Table {
    let mut t = Table::new(name, 0);
    for r in rows {
        t.append(r, 0).unwrap();
    }
    t.seal(0).unwrap();
    t
}

fn test_query(from: i64, to: i64) -> Query {
    Query::new("t", from, to).group_by("g").aggregates(vec![
        AggSpec::Count,
        AggSpec::Sum("v".into()),
        AggSpec::Min("v".into()),
        AggSpec::Max("v".into()),
        AggSpec::Avg("v".into()),
    ])
}

/// Like [`test_query`] but with the sketch/set aggregates and time
/// buckets, for the shard-invariance properties (no naive reference —
/// compared against single-table execution instead).
fn rich_query(from: i64, to: i64) -> Query {
    Query::new("t", from, to)
        .group_by("g")
        .bucket_secs(100)
        .aggregates(vec![
            AggSpec::Count,
            AggSpec::p50("v"),
            AggSpec::p99("v"),
            AggSpec::CountDistinct("v".into()),
        ])
}

/// Naive reference: compute the grouped aggregates directly from rows.
fn reference(rows: &[Row], from: i64, to: i64) -> Vec<(GroupKey, Vec<Value>)> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<GroupKey, Vec<i64>> = BTreeMap::new();
    let mut counts: BTreeMap<GroupKey, u64> = BTreeMap::new();
    for r in rows {
        if r.time() < from || r.time() >= to {
            continue;
        }
        let key = r
            .get("g")
            .map(GroupKey::from_value)
            .unwrap_or(GroupKey::Null);
        *counts.entry(key.clone()).or_default() += 1;
        if let Some(v) = r.get("v").and_then(Value::as_int) {
            groups.entry(key).or_default().push(v);
        }
    }
    counts
        .into_iter()
        .map(|(key, count)| {
            let vs = groups.get(&key).cloned().unwrap_or_default();
            let sum: i64 = vs.iter().sum();
            let vals = vec![
                Value::Int(count as i64),
                Value::Double(sum as f64),
                vs.iter()
                    .min()
                    .map(|&m| Value::Double(m as f64))
                    .unwrap_or(Value::Null),
                vs.iter()
                    .max()
                    .map(|&m| Value::Double(m as f64))
                    .unwrap_or(Value::Null),
                if vs.is_empty() {
                    Value::Null
                } else {
                    Value::Double(sum as f64 / vs.len() as f64)
                },
            ];
            (key, vals)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_reference(rows in arb_rows(), from in 0i64..500, span in 1i64..1000) {
        let to = from + span;
        let table = table_from("t", &rows);
        let q = test_query(from, to);
        let partial = execute(&table, &q).unwrap();
        let merged = merge_partials(&q.aggregates, 1, &[partial]);
        let expected = reference(&rows, from, to);
        let actual: Vec<(GroupKey, Vec<Value>)> =
            merged.groups.clone().into_iter().collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn sharding_never_changes_rich_answers(rows in arb_rows(), shards in 1usize..6) {
        // Percentile sketches and distinct sets merge exactly, and time
        // buckets are computed per row, so sharding must be invisible.
        let q = rich_query(0, 1000);
        let whole = execute(&table_from("t", &rows), &q).unwrap();
        let whole = merge_partials(&q.aggregates, 1, &[whole]);

        let mut shard_rows: Vec<Vec<Row>> = vec![Vec::new(); shards];
        for (i, r) in rows.iter().enumerate() {
            shard_rows[i % shards].push(r.clone());
        }
        let partials: Vec<_> = shard_rows
            .iter()
            .map(|rs| execute(&table_from("t", rs), &q).unwrap())
            .collect();
        let merged = merge_partials(&q.aggregates, shards, &partials);
        prop_assert_eq!(merged.groups, whole.groups);
    }

    #[test]
    fn sharding_never_changes_answers(rows in arb_rows(), shards in 1usize..6) {
        // Split rows round-robin across N leaf tables; merged result must
        // equal the single-table result — the Figure 1 aggregation
        // topology is exact, not approximate.
        let q = test_query(0, 1000);
        let whole = execute(&table_from("t", &rows), &q).unwrap();
        let whole = merge_partials(&q.aggregates, 1, &[whole]);

        let mut shard_rows: Vec<Vec<Row>> = vec![Vec::new(); shards];
        for (i, r) in rows.iter().enumerate() {
            shard_rows[i % shards].push(r.clone());
        }
        let partials: Vec<_> = shard_rows
            .iter()
            .map(|rs| execute(&table_from("t", rs), &q).unwrap())
            .collect();
        let merged = merge_partials(&q.aggregates, shards, &partials);

        prop_assert_eq!(merged.groups, whole.groups);
        prop_assert_eq!(merged.rows_matched, whole.rows_matched);
    }

    #[test]
    fn sealing_boundaries_never_change_answers(rows in arb_rows(), seal_every in 1usize..50) {
        // However the rows are carved into row blocks, answers match.
        let q = test_query(0, 1000);
        let baseline = execute(&table_from("t", &rows), &q).unwrap();

        let mut t = Table::new("t", 0);
        for (i, r) in rows.iter().enumerate() {
            t.append(r, 0).unwrap();
            if (i + 1) % seal_every == 0 {
                t.seal(0).unwrap();
            }
        }
        t.seal(0).unwrap();
        let chunked = execute(&t, &q).unwrap();
        prop_assert_eq!(chunked.groups, baseline.groups);
        prop_assert_eq!(chunked.rows_matched, baseline.rows_matched);
    }

    #[test]
    fn pruning_is_only_an_optimization(rows in arb_rows(), from in 0i64..1000, span in 0i64..200, seal_every in 1usize..40) {
        // Narrow queries on many-block tables exercise pruning; results
        // must equal the row-level reference regardless.
        let to = from + span;
        let mut t = Table::new("t", 0);
        for (i, r) in rows.iter().enumerate() {
            t.append(r, 0).unwrap();
            if (i + 1) % seal_every == 0 {
                t.seal(0).unwrap();
            }
        }
        t.seal(0).unwrap();
        let q = test_query(from, to);
        let res = execute(&t, &q).unwrap();
        let merged = merge_partials(&q.aggregates, 1, &[res]);
        let expected = reference(&rows, from, to);
        let actual: Vec<(GroupKey, Vec<Value>)> = merged.groups.clone().into_iter().collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn filters_equal_row_level_evaluation(rows in arb_rows(), threshold in 0i64..100) {
        let q = Query::new("t", 0, 1000)
            .filter(Filter::new("v", CmpOp::Ge, threshold))
            .aggregates(vec![AggSpec::Count]);
        let res = execute(&table_from("t", &rows), &q).unwrap();
        let expected = rows
            .iter()
            .filter(|r| r.get("v").and_then(Value::as_int).is_some_and(|v| v >= threshold))
            .count() as u64;
        prop_assert_eq!(res.rows_matched, expected);
    }

    #[test]
    fn availability_math(total in 1usize..100, responded_seed in any::<usize>()) {
        let responded = responded_seed % (total + 1);
        let partials = vec![scuba_query::LeafQueryResult::empty(); responded];
        let merged = merge_partials(&[AggSpec::Count], total, &partials);
        prop_assert!((merged.availability() - responded as f64 / total as f64).abs() < 1e-12);
        prop_assert_eq!(merged.is_complete(), responded == total);
    }
}
