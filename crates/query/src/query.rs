//! Query descriptions and group keys.

use scuba_columnstore::Value;

use crate::agg::AggSpec;
use crate::expr::Filter;

/// Key of one result group. Doubles are excluded (grouping on floats is a
/// footgun Scuba-style UIs avoid); nulls group together under `Null`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GroupKey {
    /// No group-by, or the row's group cell was null.
    Null,
    /// Integer group.
    Int(i64),
    /// String group.
    Str(String),
    /// Time-series bucket: the bucket's start timestamp plus the inner
    /// group key. Produced when [`Query::bucket_secs`] is set — every
    /// Scuba chart is a time series, so bucketing is first-class.
    Bucketed(i64, Box<GroupKey>),
}

impl GroupKey {
    /// Build a key from a cell value. Doubles map to `Null` (ungrouped);
    /// sets group by their canonical (sorted) joined form.
    pub fn from_value(v: &Value) -> GroupKey {
        match v {
            Value::Int(i) => GroupKey::Int(*i),
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::StrSet(items) => GroupKey::Str(items.join(",")),
            Value::Null | Value::Double(_) => GroupKey::Null,
        }
    }
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupKey::Null => f.write_str("(null)"),
            GroupKey::Int(i) => write!(f, "{i}"),
            GroupKey::Str(s) => f.write_str(s),
            GroupKey::Bucketed(t, inner) => match inner.as_ref() {
                GroupKey::Null => write!(f, "t={t}"),
                other => write!(f, "t={t}/{other}"),
            },
        }
    }
}

/// An aggregation query against one table: time range, filters, optional
/// group-by, and a list of aggregates — the shape of a Scuba dashboard
/// panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Table to read.
    pub table: String,
    /// Inclusive lower time bound ("nearly all queries contain predicates
    /// on time", §2.1).
    pub time_from: i64,
    /// Exclusive upper time bound.
    pub time_to: i64,
    /// Conjunctive filters.
    pub filters: Vec<Filter>,
    /// Optional group-by column.
    pub group_by: Option<String>,
    /// Optional time-series bucketing: rows group by
    /// `time - time.rem_euclid(bucket_secs)` in addition to `group_by`.
    pub bucket_secs: Option<i64>,
    /// Aggregates to compute (at least one).
    pub aggregates: Vec<AggSpec>,
}

impl Query {
    /// Start building a count-rows query over a table and time range.
    pub fn new(table: impl Into<String>, time_from: i64, time_to: i64) -> Query {
        Query {
            table: table.into(),
            time_from,
            time_to,
            filters: Vec::new(),
            group_by: None,
            bucket_secs: None,
            aggregates: vec![AggSpec::Count],
        }
    }

    /// Add a filter.
    pub fn filter(mut self, f: Filter) -> Query {
        self.filters.push(f);
        self
    }

    /// Set the group-by column.
    pub fn group_by(mut self, column: impl Into<String>) -> Query {
        self.group_by = Some(column.into());
        self
    }

    /// Bucket results into time-series intervals of `secs` seconds.
    pub fn bucket_secs(mut self, secs: i64) -> Query {
        assert!(secs > 0, "bucket width must be positive");
        self.bucket_secs = Some(secs);
        self
    }

    /// Replace the aggregate list.
    pub fn aggregates(mut self, aggs: Vec<AggSpec>) -> Query {
        assert!(!aggs.is_empty(), "a query needs at least one aggregate");
        self.aggregates = aggs;
        self
    }

    /// Every column the query touches (filters + group + aggregates),
    /// deduplicated — execution decodes only these.
    pub fn touched_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = Vec::new();
        for f in &self.filters {
            if !cols.contains(&f.column.as_str()) {
                cols.push(&f.column);
            }
        }
        if let Some(g) = &self.group_by {
            if !cols.contains(&g.as_str()) {
                cols.push(g);
            }
        }
        for a in &self.aggregates {
            if let Some(c) = a.column() {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn group_key_from_values() {
        assert_eq!(GroupKey::from_value(&Value::Int(3)), GroupKey::Int(3));
        assert_eq!(
            GroupKey::from_value(&Value::from("a")),
            GroupKey::Str("a".into())
        );
        assert_eq!(GroupKey::from_value(&Value::Null), GroupKey::Null);
        assert_eq!(GroupKey::from_value(&Value::Double(1.0)), GroupKey::Null);
    }

    #[test]
    fn group_keys_order_deterministically() {
        let mut keys = vec![
            GroupKey::Str("b".into()),
            GroupKey::Int(2),
            GroupKey::Null,
            GroupKey::Int(1),
            GroupKey::Str("a".into()),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                GroupKey::Null,
                GroupKey::Int(1),
                GroupKey::Int(2),
                GroupKey::Str("a".into()),
                GroupKey::Str("b".into()),
            ]
        );
    }

    #[test]
    fn touched_columns_dedupes() {
        let q = Query::new("t", 0, 10)
            .filter(Filter::new("sev", CmpOp::Eq, "error"))
            .filter(Filter::new("code", CmpOp::Ge, 500i64))
            .group_by("sev")
            .aggregates(vec![AggSpec::Count, AggSpec::Avg("latency".into())]);
        assert_eq!(q.touched_columns(), vec!["sev", "code", "latency"]);
    }

    #[test]
    #[should_panic(expected = "at least one aggregate")]
    fn empty_aggregates_rejected() {
        let _ = Query::new("t", 0, 1).aggregates(vec![]);
    }

    #[test]
    fn display_group_keys() {
        assert_eq!(GroupKey::Null.to_string(), "(null)");
        assert_eq!(GroupKey::Int(7).to_string(), "7");
        assert_eq!(GroupKey::Str("web".into()).to_string(), "web");
    }
}
