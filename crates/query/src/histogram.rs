//! A mergeable log-scaled histogram for percentile aggregates.
//!
//! Scuba's interactive use cases — "performance debugging" (§1) — live on
//! latency percentiles. Percentiles are not decomposable like sums, so
//! leaves ship a compact sketch: a histogram with logarithmically-spaced
//! buckets (relative error bounded by the bucket growth factor), which the
//! aggregator merges bucket-wise. This is the classic HDR-histogram idea,
//! implemented from scratch.

/// Bucket growth factor: each bucket's upper bound is `GROWTH`× the
/// previous. 2^(1/8) ≈ 1.09 keeps relative quantile error under ~9%.
const GROWTH_LOG2: f64 = 0.125;

/// Number of buckets covering magnitudes 2^-16 .. 2^48 at 8 buckets per
/// octave (plus the two tails).
const OCTAVE_LO: i32 = -16;
const OCTAVE_HI: i32 = 48;
const BUCKETS: usize = ((OCTAVE_HI - OCTAVE_LO) as usize * 8) + 2;

/// A mergeable histogram over non-negative magnitudes; negative samples
/// are tracked separately by sign (rare in latency data but handled).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Counts for positive magnitudes (index 0 = underflow tail).
    buckets: Vec<u64>,
    /// Count of exact zeros.
    zeros: u64,
    /// Negative samples (stored as a mirrored histogram, magnitude-based).
    negative: Option<Box<LogHistogram>>,
    /// Total samples.
    count: u64,
    /// Exact min/max for tail correctness.
    min: f64,
    max: f64,
}

fn bucket_index(magnitude: f64) -> usize {
    debug_assert!(magnitude > 0.0);
    let idx = ((magnitude.log2() - OCTAVE_LO as f64) / GROWTH_LOG2).floor() as isize + 1;
    idx.clamp(0, BUCKETS as isize - 1) as usize
}

/// Representative value (geometric midpoint) of a bucket.
fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        return 2f64.powi(OCTAVE_LO); // underflow tail
    }
    let log2 = OCTAVE_LO as f64 + (index as f64 - 0.5) * GROWTH_LOG2;
    2f64.powf(log2)
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            zeros: 0,
            negative: None,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (NaN is ignored).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zeros += 1;
        } else if v > 0.0 {
            self.buckets[bucket_index(v)] += 1;
        } else {
            self.negative
                .get_or_insert_with(|| Box::new(LogHistogram::new()))
                .record_magnitude(-v);
        }
    }

    fn record_magnitude(&mut self, m: f64) {
        self.count += 1;
        self.buckets[bucket_index(m)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merge another histogram into this one (bucket-wise; exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if let Some(on) = &other.negative {
            let sn = self
                .negative
                .get_or_insert_with(|| Box::new(LogHistogram::new()));
            for (a, b) in sn.buckets.iter_mut().zip(&on.buckets) {
                *a += b;
            }
            sn.count += on.count;
        }
    }

    /// Estimate the q-quantile (0.0 ..= 1.0). Returns `None` when empty.
    /// Min and max are exact; interior quantiles carry the bucket's
    /// relative error (~9%).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Rank within: negatives (largest magnitude = smallest value),
        // then zeros, then positives.
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        if let Some(neg) = &self.negative {
            // Iterate negative magnitudes downward: most-negative first.
            for i in (0..BUCKETS).rev() {
                let c = neg.buckets[i];
                if c == 0 {
                    continue;
                }
                seen += c;
                if seen >= target {
                    return Some((-bucket_value(i)).max(self.min));
                }
            }
        }
        seen += self.zeros;
        if seen >= target {
            return Some(0.0);
        }
        for i in 0..BUCKETS {
            let c = self.buckets[i];
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return Some(bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let h = filled(&values);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() / 990.0 < 0.10, "p99 = {p99}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let a: Vec<f64> = (1..500).map(|i| i as f64 * 0.37).collect();
        let b: Vec<f64> = (1..700).map(|i| i as f64 * 1.91).collect();
        let mut ha = filled(&a);
        let hb = filled(&b);
        let combined = filled(&a.iter().chain(&b).copied().collect::<Vec<_>>());
        ha.merge(&hb);
        assert_eq!(ha, combined);
    }

    #[test]
    fn handles_zeros_and_negatives() {
        let h = filled(&[-10.0, -1.0, 0.0, 0.0, 1.0, 10.0]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile(0.0), Some(-10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Median lands on the zeros.
        assert_eq!(h.quantile(0.5), Some(0.0));
        // First third is negative.
        assert!(h.quantile(0.2).unwrap() < 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_value() {
        let h = filled(&[42.0]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 42.0).abs() / 42.0 < 0.10, "q={q} v={v}");
        }
    }

    #[test]
    fn extreme_magnitudes_clamped_not_lost() {
        let h = filled(&[1e-30, 1e30]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(1e-30));
        assert_eq!(h.quantile(1.0), Some(1e30));
    }

    #[test]
    fn nan_ignored() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(5.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn relative_error_bound_on_lognormalish_data() {
        // Latency-shaped data: the use case percentiles exist for.
        let mut values = Vec::new();
        let mut state = 7u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            values.push(10.0 * (1.0 + 20.0 * u * u * u)); // heavy tail
        }
        let h = filled(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q).unwrap();
            let err = (approx - exact).abs() / exact;
            assert!(
                err < 0.10,
                "q={q}: exact {exact}, approx {approx}, err {err}"
            );
        }
    }
}
