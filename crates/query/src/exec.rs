//! Leaf-local query execution.
//!
//! The plan is fixed and columnar: select row blocks by time overlap
//! (§2.1 pruning), decode only the touched columns of each surviving
//! block, apply the time predicate and filters row-wise, then fold rows
//! into per-group aggregate states.

use std::collections::BTreeMap;

use scuba_columnstore::{ColumnData, Result as StoreResult, Table, Value, TIME_COLUMN};

use crate::agg::AggState;
use crate::query::{GroupKey, Query};

/// A leaf's partial answer: per-group aggregate states plus scan stats.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafQueryResult {
    /// Per-group partial aggregates, one state per requested aggregate.
    pub groups: BTreeMap<GroupKey, Vec<AggState>>,
    /// Rows that passed all predicates.
    pub rows_matched: u64,
    /// Rows examined (in blocks that survived pruning).
    pub rows_scanned: u64,
    /// Row blocks skipped by the min/max-timestamp pruning.
    pub blocks_pruned: u64,
    /// Row blocks skipped by zone-map statistics on filter columns.
    pub blocks_zonemap_pruned: u64,
    /// Row blocks actually decoded.
    pub blocks_scanned: u64,
}

impl LeafQueryResult {
    /// An empty result (leaf holds none of the table).
    pub fn empty() -> LeafQueryResult {
        LeafQueryResult {
            groups: BTreeMap::new(),
            rows_matched: 0,
            rows_scanned: 0,
            blocks_pruned: 0,
            blocks_zonemap_pruned: 0,
            blocks_scanned: 0,
        }
    }
}

/// Execute `query` over one leaf-local table fraction.
pub fn execute(table: &Table, query: &Query) -> StoreResult<LeafQueryResult> {
    debug_assert_eq!(table.name(), query.table);
    let mut result = LeafQueryResult::empty();

    let plan = crate::plan::plan_scan(table, query)?;
    result.blocks_pruned = plan.blocks_pruned;
    result.blocks_zonemap_pruned = plan.blocks_zonemap_pruned;
    result.blocks_scanned = plan.blocks.len() as u64;
    let blocks = plan.blocks;

    let touched = query.touched_columns();

    for block in &blocks {
        let rows = block.row_count();
        if rows == 0 {
            continue;
        }
        let time_col = block
            .decode_column(TIME_COLUMN)
            .transpose()?
            .expect("every block has a time column");
        // Decode touched columns once per block; missing columns read as
        // all-null.
        let mut cols: Vec<(&str, Option<ColumnData>)> = Vec::with_capacity(touched.len());
        for &name in &touched {
            cols.push((name, block.decode_column(name).transpose()?));
        }
        let cell = |cols: &[(&str, Option<ColumnData>)], name: &str, row: usize| -> Value {
            if name == TIME_COLUMN {
                return time_col.get(row);
            }
            cols.iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, c)| c.as_ref())
                .map(|c| c.get(row))
                .unwrap_or(Value::Null)
        };

        'rows: for row in 0..rows {
            result.rows_scanned += 1;
            let t = time_col.get(row).as_int().unwrap_or(i64::MIN);
            if t < query.time_from || t >= query.time_to {
                continue;
            }
            for f in &query.filters {
                if !f.matches(&cell(&cols, &f.column, row)) {
                    continue 'rows;
                }
            }
            result.rows_matched += 1;
            let inner = match &query.group_by {
                None => GroupKey::Null,
                Some(g) => GroupKey::from_value(&cell(&cols, g, row)),
            };
            let key = match query.bucket_secs {
                None => inner,
                Some(w) => GroupKey::Bucketed(t - t.rem_euclid(w), Box::new(inner)),
            };
            let states = result
                .groups
                .entry(key)
                .or_insert_with(|| query.aggregates.iter().map(|a| a.new_state()).collect());
            for (state, spec) in states.iter_mut().zip(&query.aggregates) {
                match spec.column() {
                    None => state.update(&Value::Int(1)), // Count ignores the cell
                    Some(c) => state.update(&cell(&cols, c, row)),
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::expr::{CmpOp, Filter};
    use scuba_columnstore::Row;

    /// 100 request-log rows at times 0..100: status alternates 200/500,
    /// endpoint cycles over 3 values, latency = row index.
    fn service_table() -> Table {
        let mut t = Table::new("requests", 0);
        for i in 0..100i64 {
            let row = Row::at(i)
                .with("status", if i % 2 == 0 { 200i64 } else { 500 })
                .with("endpoint", format!("/api/{}", i % 3))
                .with("latency", i as f64);
            t.append(&row, 0).unwrap();
        }
        t.seal(0).unwrap();
        t
    }

    #[test]
    fn count_all() {
        let t = service_table();
        let q = Query::new("requests", 0, 100);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows_matched, 100);
        assert_eq!(r.groups[&GroupKey::Null][0].finish(), Value::Int(100));
    }

    #[test]
    fn time_range_is_half_open() {
        let t = service_table();
        let r = execute(&t, &Query::new("requests", 10, 20)).unwrap();
        assert_eq!(r.rows_matched, 10);
        let r = execute(&t, &Query::new("requests", 99, 99)).unwrap();
        assert_eq!(r.rows_matched, 0);
    }

    #[test]
    fn filters_conjoin() {
        let t = service_table();
        let q = Query::new("requests", 0, 100)
            .filter(Filter::new("status", CmpOp::Eq, 500i64))
            .filter(Filter::new("endpoint", CmpOp::Eq, "/api/1"));
        let r = execute(&t, &q).unwrap();
        // status==500 => odd i; endpoint 1 => i % 3 == 1; both => i in {1,7,13,...}
        let expected = (0..100).filter(|i| i % 2 == 1 && i % 3 == 1).count() as u64;
        assert_eq!(r.rows_matched, expected);
    }

    #[test]
    fn group_by_with_multiple_aggregates() {
        let t = service_table();
        let q = Query::new("requests", 0, 100)
            .group_by("endpoint")
            .aggregates(vec![
                AggSpec::Count,
                AggSpec::Avg("latency".into()),
                AggSpec::Max("latency".into()),
            ]);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.groups.len(), 3);
        let g1 = &r.groups[&GroupKey::Str("/api/1".into())];
        // endpoint 1: i = 1, 4, ..., 97 -> 33 rows, max 97.
        assert_eq!(g1[0].finish(), Value::Int(33));
        assert_eq!(g1[2].finish(), Value::Double(97.0));
    }

    #[test]
    fn pruning_counts_blocks() {
        let mut t = Table::new("requests", 0);
        for epoch in 0..10i64 {
            for i in 0..20 {
                t.append(&Row::at(epoch * 100 + i), 0).unwrap();
            }
            t.seal(0).unwrap();
        }
        let r = execute(&t, &Query::new("requests", 200, 250)).unwrap();
        assert_eq!(r.blocks_scanned, 1);
        assert_eq!(r.blocks_pruned, 9);
        assert_eq!(r.rows_scanned, 20); // only the surviving block decoded
        assert_eq!(r.rows_matched, 20);
    }

    #[test]
    fn sees_unsealed_rows() {
        let mut t = Table::new("requests", 0);
        t.append(&Row::at(5).with("status", 200i64), 0).unwrap();
        let r = execute(&t, &Query::new("requests", 0, 10)).unwrap();
        assert_eq!(r.rows_matched, 1);
    }

    #[test]
    fn missing_column_is_null() {
        let t = service_table();
        // Filter on a column the table doesn't have: nothing matches.
        let q = Query::new("requests", 0, 100).filter(Filter::new("nope", CmpOp::Eq, 1i64));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows_matched, 0);
        // Aggregating a missing column: count still works, avg is null.
        let q = Query::new("requests", 0, 100)
            .aggregates(vec![AggSpec::Count, AggSpec::Avg("nope".into())]);
        let r = execute(&t, &q).unwrap();
        let g = &r.groups[&GroupKey::Null];
        assert_eq!(g[0].finish(), Value::Int(100));
        assert_eq!(g[1].finish(), Value::Null);
    }

    #[test]
    fn filter_on_time_column_works() {
        let t = service_table();
        let q = Query::new("requests", 0, 100).filter(Filter::new(TIME_COLUMN, CmpOp::Lt, 5i64));
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.rows_matched, 5);
    }

    #[test]
    fn time_buckets_produce_series() {
        let t = service_table(); // times 0..99
        let q = Query::new("requests", 0, 100)
            .bucket_secs(25)
            .aggregates(vec![AggSpec::Count]);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.groups.len(), 4);
        for start in [0i64, 25, 50, 75] {
            let key = GroupKey::Bucketed(start, Box::new(GroupKey::Null));
            assert_eq!(r.groups[&key][0].finish(), Value::Int(25), "bucket {start}");
        }
    }

    #[test]
    fn time_buckets_compose_with_group_by() {
        let t = service_table();
        let q = Query::new("requests", 0, 100)
            .bucket_secs(50)
            .group_by("status")
            .aggregates(vec![AggSpec::Count]);
        let r = execute(&t, &q).unwrap();
        assert_eq!(r.groups.len(), 4); // 2 buckets x 2 statuses
        let key = GroupKey::Bucketed(0, Box::new(GroupKey::Int(200)));
        assert_eq!(r.groups[&key][0].finish(), Value::Int(25));
    }

    #[test]
    fn negative_times_bucket_correctly() {
        let mut t = Table::new("requests", 0);
        for i in -10i64..10 {
            t.append(&Row::at(i), 0).unwrap();
        }
        let q = Query::new("requests", -10, 10)
            .bucket_secs(10)
            .aggregates(vec![AggSpec::Count]);
        let r = execute(&t, &q).unwrap();
        // rem_euclid floors toward -inf: buckets -10 and 0.
        assert_eq!(r.groups.len(), 2);
        let key = GroupKey::Bucketed(-10, Box::new(GroupKey::Null));
        assert_eq!(r.groups[&key][0].finish(), Value::Int(10));
    }

    #[test]
    fn percentile_and_distinct_aggregates() {
        let t = service_table(); // latency = row index 0..99
        let q = Query::new("requests", 0, 100).aggregates(vec![
            AggSpec::p50("latency"),
            AggSpec::p99("latency"),
            AggSpec::CountDistinct("endpoint".into()),
            AggSpec::CountDistinct("status".into()),
        ]);
        let r = execute(&t, &q).unwrap();
        let g = &r.groups[&GroupKey::Null];
        let p50 = g[0].finish().as_double().unwrap();
        assert!((p50 - 50.0).abs() < 8.0, "p50 = {p50}");
        let p99 = g[1].finish().as_double().unwrap();
        assert!(p99 > 90.0 && p99 <= 99.0 * 1.1, "p99 = {p99}");
        assert_eq!(g[2].finish(), Value::Int(3)); // 3 endpoints
        assert_eq!(g[3].finish(), Value::Int(2)); // 200/500
    }

    #[test]
    fn empty_table_empty_result() {
        let t = Table::new("requests", 0);
        let r = execute(&t, &Query::new("requests", 0, 100)).unwrap();
        assert_eq!(r.rows_matched, 0);
        assert!(r.groups.is_empty());
    }
}
