//! Query engine for the Scuba fast-restart reproduction.
//!
//! Scuba queries are "interactive, ad hoc, analysis queries ... typically
//! run in under a second over GBs of data" (§1): aggregations with
//! filters, almost always carrying a time predicate that drives row-block
//! pruning (§2.1). The engine is split the way Figure 1 splits it:
//!
//! * [`plan`] — shared block selection: time-range pruning plus per-block
//!   zone-map (min/max) pruning on filter columns.
//! * [`exec`] — row-wise leaf-local execution: decode the touched columns
//!   of surviving blocks, filter, group, aggregate. Kept as the
//!   differential oracle for the vectorized path.
//! * [`vectorized`] — the production scan path: columnar filter kernels
//!   over in-place [`scuba_columnstore::ColumnView`]s and selection
//!   vectors; `Value` boxing only for selected rows.
//! * [`partial`] — aggregator-side merging: "Scuba can and does return
//!   partial query results when not all servers are available" (§1), so a
//!   merged result carries the fraction of leaves that contributed.

pub mod agg;
pub mod exec;
pub mod expr;
pub mod histogram;
pub mod parse;
pub mod partial;
pub mod plan;
pub mod query;
pub mod vectorized;

pub use agg::{AggSpec, AggState, DistinctValue};
pub use exec::{execute, LeafQueryResult};
pub use expr::{CmpOp, Filter};
pub use histogram::LogHistogram;
pub use parse::{parse_query, ParseError};
pub use partial::{merge_partials, MergedResult};
pub use plan::{plan_scan, ScanPlan};
pub use query::{GroupKey, Query};
pub use vectorized::execute_vectorized;
