//! A small textual query language, for tools and the interactive shell.
//!
//! Scuba's users write queries in a UI; this crate's equivalent surface is
//! a one-line language that covers the same shapes:
//!
//! ```text
//! count(*), avg(latency_ms), p99(latency_ms)
//!   from requests
//!   where status >= 500 and endpoint contains '/api'
//!   group by endpoint
//!   bucket 60
//!   since 1700000000 until 1700003600
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := aggs "from" ident [ "where" pred ("and" pred)* ]
//!            [ "group" "by" ident ] [ "bucket" int ]
//!            [ "since" int ] [ "until" int ]
//! aggs    := agg ("," agg)*
//! agg     := "count(*)" | fn "(" ident ")" | "percentile(" ident "," num ")"
//! fn      := sum|min|max|avg|p50|p95|p99|count_distinct
//! pred    := ident op literal
//! op      := = | == | != | < | <= | > | >= | contains
//! literal := int | float | 'str' | "str"
//! ```

use std::fmt;

use crate::agg::AggSpec;
use crate::expr::{CmpOp, Filter};
use crate::query::Query;
use scuba_columnstore::Value;

/// A parse failure, with the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    Op(CmpOp),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut out = Vec::new();
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                ',' => {
                    out.push((Token::Comma, start));
                    self.pos += 1;
                }
                '(' => {
                    out.push((Token::LParen, start));
                    self.pos += 1;
                }
                ')' => {
                    out.push((Token::RParen, start));
                    self.pos += 1;
                }
                '*' => {
                    out.push((Token::Star, start));
                    self.pos += 1;
                }
                '=' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                    }
                    out.push((Token::Op(CmpOp::Eq), start));
                }
                '!' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        out.push((Token::Op(CmpOp::Ne), start));
                    } else {
                        return Err(self.err("expected '=' after '!'"));
                    }
                }
                '<' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        out.push((Token::Op(CmpOp::Le), start));
                    } else {
                        out.push((Token::Op(CmpOp::Lt), start));
                    }
                }
                '>' => {
                    self.pos += 1;
                    if bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        out.push((Token::Op(CmpOp::Ge), start));
                    } else {
                        out.push((Token::Op(CmpOp::Gt), start));
                    }
                }
                '\'' | '"' => {
                    let quote = c;
                    self.pos += 1;
                    let content_start = self.pos;
                    while self.pos < bytes.len() && bytes[self.pos] as char != quote {
                        self.pos += 1;
                    }
                    if self.pos >= bytes.len() {
                        return Err(self.err("unterminated string literal"));
                    }
                    out.push((
                        Token::Str(self.input[content_start..self.pos].to_owned()),
                        start,
                    ));
                    self.pos += 1;
                }
                c if c.is_ascii_digit() || c == '-' => {
                    self.pos += 1;
                    let mut is_float = false;
                    while self.pos < bytes.len() {
                        let d = bytes[self.pos] as char;
                        if d.is_ascii_digit() {
                            self.pos += 1;
                        } else if d == '.' && !is_float {
                            is_float = true;
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    let text = &self.input[start..self.pos];
                    if is_float {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.err(format!("bad float literal {text:?}")))?;
                        out.push((Token::Float(v), start));
                    } else {
                        let v: i64 = text
                            .parse()
                            .map_err(|_| self.err(format!("bad integer literal {text:?}")))?;
                        out.push((Token::Int(v), start));
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '/' => {
                    self.pos += 1;
                    while self.pos < bytes.len() {
                        let d = bytes[self.pos] as char;
                        if d.is_ascii_alphanumeric() || d == '_' || d == '.' || d == '/' {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Ident(self.input[start..self.pos].to_owned()), start));
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.input_len)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.position(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume an identifier equal (case-insensitively) to `kw`.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_agg(&mut self) -> Result<AggSpec, ParseError> {
        let name = self.expect_ident("an aggregate function")?;
        self.expect(Token::LParen, "'('")?;
        let spec = match name.to_ascii_lowercase().as_str() {
            "count" => {
                self.expect(Token::Star, "'*' (count takes no column)")?;
                AggSpec::Count
            }
            "sum" => AggSpec::Sum(self.expect_ident("a column name")?),
            "min" => AggSpec::Min(self.expect_ident("a column name")?),
            "max" => AggSpec::Max(self.expect_ident("a column name")?),
            "avg" => AggSpec::Avg(self.expect_ident("a column name")?),
            "p50" => AggSpec::p50(self.expect_ident("a column name")?),
            "p95" => AggSpec::Percentile(self.expect_ident("a column name")?, 0.95),
            "p99" => AggSpec::p99(self.expect_ident("a column name")?),
            "count_distinct" => AggSpec::CountDistinct(self.expect_ident("a column name")?),
            "percentile" => {
                let column = self.expect_ident("a column name")?;
                self.expect(Token::Comma, "','")?;
                let q = match self.next() {
                    Some(Token::Float(q)) => q,
                    Some(Token::Int(q)) => q as f64,
                    other => return Err(self.err(format!("expected a quantile, found {other:?}"))),
                };
                if !(0.0..=1.0).contains(&q) {
                    return Err(self.err(format!("quantile {q} out of [0, 1]")));
                }
                AggSpec::Percentile(column, q)
            }
            other => return Err(self.err(format!("unknown aggregate function {other:?}"))),
        };
        self.expect(Token::RParen, "')'")?;
        Ok(spec)
    }

    fn parse_predicate(&mut self) -> Result<Filter, ParseError> {
        let column = self.expect_ident("a column name")?;
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("contains") => CmpOp::Contains,
            other => {
                return Err(self.err(format!("expected a comparison operator, found {other:?}")))
            }
        };
        let literal = match self.next() {
            Some(Token::Int(v)) => Value::Int(v),
            Some(Token::Float(v)) => Value::Double(v),
            Some(Token::Str(s)) => Value::Str(s),
            other => return Err(self.err(format!("expected a literal, found {other:?}"))),
        };
        Ok(Filter {
            column,
            op,
            literal,
        })
    }
}

/// Parse one query. `default_range` supplies `[since, until)` when the
/// query does not say (pass the table's full range or `(0, i64::MAX)`).
pub fn parse_query(input: &str, default_range: (i64, i64)) -> Result<Query, ParseError> {
    let tokens = Lexer::new(input).tokens()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };

    // Aggregates.
    let mut aggregates = vec![p.parse_agg()?];
    while p.peek() == Some(&Token::Comma) {
        p.next();
        aggregates.push(p.parse_agg()?);
    }

    if !p.eat_keyword("from") {
        return Err(p.err("expected 'from'"));
    }
    let table = p.expect_ident("a table name")?;

    let mut query = Query::new(table, default_range.0, default_range.1).aggregates(aggregates);

    // Optional clauses, any order.
    loop {
        if p.eat_keyword("where") {
            query.filters.push(p.parse_predicate()?);
            while p.eat_keyword("and") {
                query.filters.push(p.parse_predicate()?);
            }
        } else if p.eat_keyword("group") {
            if !p.eat_keyword("by") {
                return Err(p.err("expected 'by' after 'group'"));
            }
            query.group_by = Some(p.expect_ident("a column name")?);
        } else if p.eat_keyword("bucket") {
            match p.next() {
                Some(Token::Int(secs)) if secs > 0 => query.bucket_secs = Some(secs),
                other => {
                    return Err(p.err(format!("expected a positive bucket width, found {other:?}")))
                }
            }
        } else if p.eat_keyword("since") {
            match p.next() {
                Some(Token::Int(t)) => query.time_from = t,
                other => return Err(p.err(format!("expected a timestamp, found {other:?}"))),
            }
        } else if p.eat_keyword("until") {
            match p.next() {
                Some(Token::Int(t)) => query.time_to = t,
                other => return Err(p.err(format!("expected a timestamp, found {other:?}"))),
            }
        } else {
            break;
        }
    }

    if p.peek().is_some() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::GroupKey;

    const FULL: (i64, i64) = (0, i64::MAX);

    #[test]
    fn minimal_count() {
        let q = parse_query("count(*) from requests", FULL).unwrap();
        assert_eq!(q.table, "requests");
        assert_eq!(q.aggregates, vec![AggSpec::Count]);
        assert!(q.filters.is_empty());
        assert_eq!(q.time_from, 0);
        assert_eq!(q.time_to, i64::MAX);
    }

    #[test]
    fn full_dashboard_query() {
        let q = parse_query(
            "count(*), avg(latency_ms), p99(latency_ms), count_distinct(host) \
             from requests \
             where status >= 500 and endpoint contains '/api' \
             group by endpoint bucket 60 since 1000 until 2000",
            FULL,
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 4);
        assert_eq!(q.aggregates[2], AggSpec::p99("latency_ms"));
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters[0], Filter::new("status", CmpOp::Ge, 500i64));
        assert_eq!(
            q.filters[1],
            Filter::new("endpoint", CmpOp::Contains, "/api")
        );
        assert_eq!(q.group_by.as_deref(), Some("endpoint"));
        assert_eq!(q.bucket_secs, Some(60));
        assert_eq!(q.time_from, 1000);
        assert_eq!(q.time_to, 2000);
    }

    #[test]
    fn percentile_with_explicit_quantile() {
        let q = parse_query("percentile(lat, 0.999) from t", FULL).unwrap();
        assert_eq!(q.aggregates[0], AggSpec::Percentile("lat".into(), 0.999));
        assert!(parse_query("percentile(lat, 1.5) from t", FULL).is_err());
    }

    #[test]
    fn operators_and_literals() {
        for (text, op) in [
            ("= 5", CmpOp::Eq),
            ("== 5", CmpOp::Eq),
            ("!= 5", CmpOp::Ne),
            ("< 5", CmpOp::Lt),
            ("<= 5", CmpOp::Le),
            ("> 5", CmpOp::Gt),
            (">= 5", CmpOp::Ge),
        ] {
            let q = parse_query(&format!("count(*) from t where x {text}"), FULL).unwrap();
            assert_eq!(q.filters[0].op, op, "{text}");
            assert_eq!(q.filters[0].literal, Value::Int(5));
        }
        let q = parse_query("count(*) from t where x = 2.5", FULL).unwrap();
        assert_eq!(q.filters[0].literal, Value::Double(2.5));
        let q = parse_query("count(*) from t where x = -3", FULL).unwrap();
        assert_eq!(q.filters[0].literal, Value::Int(-3));
        let q = parse_query(r#"count(*) from t where x = "hi there""#, FULL).unwrap();
        assert_eq!(q.filters[0].literal, Value::from("hi there"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query(
            "COUNT(*) FROM t WHERE x = 1 GROUP BY g BUCKET 10 SINCE 5 UNTIL 9",
            FULL,
        )
        .unwrap();
        assert_eq!(q.group_by.as_deref(), Some("g"));
        assert_eq!(q.bucket_secs, Some(10));
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_query("count(*) frm t", FULL).unwrap_err();
        assert!(e.message.contains("expected 'from'"), "{e}");
        assert_eq!(e.position, 9);
        assert!(parse_query("count(*) from t trailing junk", FULL).is_err());
        assert!(parse_query("bogus(x) from t", FULL).is_err());
        assert!(parse_query("count(*) from t where x !! 1", FULL).is_err());
        assert!(parse_query("count(*) from t where x = 'unterminated", FULL).is_err());
        assert!(parse_query("", FULL).is_err());
        assert!(parse_query("count(*) from t bucket 0", FULL).is_err());
        assert!(parse_query("count(*) from t bucket -5", FULL).is_err());
    }

    #[test]
    fn parsed_query_actually_runs() {
        use scuba_columnstore::{Row, Table};
        let mut t = Table::new("requests", 0);
        for i in 0..100i64 {
            t.append(
                &Row::at(i)
                    .with("status", if i % 4 == 0 { 500i64 } else { 200 })
                    .with("latency_ms", i as f64),
                0,
            )
            .unwrap();
        }
        t.seal(0).unwrap();
        let q = parse_query(
            "count(*), max(latency_ms) from requests where status >= 500",
            FULL,
        )
        .unwrap();
        let r = crate::exec::execute(&t, &q).unwrap();
        assert_eq!(r.rows_matched, 25);
        assert_eq!(r.groups[&GroupKey::Null][1].finish(), Value::Double(96.0));
    }
}
