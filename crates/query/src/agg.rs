//! Aggregate functions with mergeable partial states.
//!
//! Leaves compute partial aggregates; the aggregator merges them (Figure
//! 1: "aggregate the results as they arrive from the leaves"). Every
//! aggregate therefore has a commutative, associative [`AggState::merge`].

use std::collections::BTreeSet;

use scuba_columnstore::Value;

use crate::histogram::LogHistogram;

/// Which aggregate to compute, over which column.
#[derive(Debug, Clone, PartialEq)]
pub enum AggSpec {
    /// Row count (no column).
    Count,
    /// Sum of a numeric column.
    Sum(String),
    /// Minimum of a numeric column.
    Min(String),
    /// Maximum of a numeric column.
    Max(String),
    /// Mean of a numeric column.
    Avg(String),
    /// Approximate q-quantile (0.0..=1.0) of a numeric column, via a
    /// mergeable log-histogram sketch (~9% relative error) — the latency
    /// percentiles Scuba's performance-debugging use case lives on (§1).
    Percentile(String, f64),
    /// Exact distinct-value count of a column (mergeable set state).
    CountDistinct(String),
}

impl AggSpec {
    /// Convenience: the median.
    pub fn p50(column: impl Into<String>) -> AggSpec {
        AggSpec::Percentile(column.into(), 0.5)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(column: impl Into<String>) -> AggSpec {
        AggSpec::Percentile(column.into(), 0.99)
    }

    /// Column this aggregate reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            AggSpec::Count => None,
            AggSpec::Sum(c)
            | AggSpec::Min(c)
            | AggSpec::Max(c)
            | AggSpec::Avg(c)
            | AggSpec::Percentile(c, _)
            | AggSpec::CountDistinct(c) => Some(c),
        }
    }

    /// Fresh accumulator for this aggregate.
    pub fn new_state(&self) -> AggState {
        match self {
            AggSpec::Count => AggState::Count(0),
            AggSpec::Sum(_) => AggState::Sum(0.0),
            AggSpec::Min(_) => AggState::Min(None),
            AggSpec::Max(_) => AggState::Max(None),
            AggSpec::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
            AggSpec::Percentile(_, q) => AggState::Percentile {
                histogram: Box::new(LogHistogram::new()),
                q: *q,
            },
            AggSpec::CountDistinct(_) => AggState::Distinct(BTreeSet::new()),
        }
    }
}

/// A normalized cell value usable as a set member for COUNT DISTINCT.
/// Doubles compare by bit pattern (so two NaNs with the same bits are one
/// distinct value).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DistinctValue {
    /// Integer cell.
    Int(i64),
    /// String cell.
    Str(String),
    /// Double cell, by bit pattern.
    Bits(u64),
}

impl DistinctValue {
    fn from_value(v: &Value) -> Option<DistinctValue> {
        match v {
            Value::Null => None,
            Value::Int(i) => Some(DistinctValue::Int(*i)),
            Value::Str(s) => Some(DistinctValue::Str(s.clone())),
            Value::Double(d) => Some(DistinctValue::Bits(d.to_bits())),
            // A whole set is one distinct value (sets are normalized, so
            // the joined form is canonical). Element-level distinctness
            // would be a different aggregate.
            Value::StrSet(items) => Some(DistinctValue::Str(items.join("\u{1f}"))),
        }
    }
}

/// A partial aggregate value. Numeric aggregates accumulate as f64 (ints
/// widen), matching Scuba's analytics-oriented semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Row count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running minimum (None until a value arrives).
    Min(Option<f64>),
    /// Running maximum.
    Max(Option<f64>),
    /// Running mean components.
    Avg { sum: f64, count: u64 },
    /// Quantile sketch (boxed: the histogram is large).
    Percentile {
        /// Mergeable log-histogram of samples.
        histogram: Box<LogHistogram>,
        /// Which quantile to report.
        q: f64,
    },
    /// Exact distinct-value set.
    Distinct(BTreeSet<DistinctValue>),
}

impl AggState {
    /// Fold one cell into the accumulator. Nulls and non-numeric cells are
    /// skipped (except Count, which counts the row regardless).
    pub fn update(&mut self, cell: &Value) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => {
                if let Some(v) = cell.as_numeric() {
                    *s += v;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = cell.as_numeric() {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            AggState::Max(m) => {
                if let Some(v) = cell.as_numeric() {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = cell.as_numeric() {
                    *sum += v;
                    *count += 1;
                }
            }
            AggState::Percentile { histogram, .. } => {
                if let Some(v) = cell.as_numeric() {
                    histogram.record(v);
                }
            }
            AggState::Distinct(set) => {
                if let Some(dv) = DistinctValue::from_value(cell) {
                    set.insert(dv);
                }
            }
        }
    }

    /// Merge another partial state of the same kind. Panics on kind
    /// mismatch (states are always built from the same [`AggSpec`] list).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.min(*bv)));
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.max(*bv)));
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (
                AggState::Percentile { histogram, .. },
                AggState::Percentile { histogram: h2, .. },
            ) => histogram.merge(h2),
            (AggState::Distinct(a), AggState::Distinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (a, b) => panic!("cannot merge {a:?} with {b:?}"),
        }
    }

    /// Final value for output. Empty Min/Max/Avg yield `Value::Null`.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum(s) => Value::Double(*s),
            AggState::Min(m) => m.map(Value::Double).unwrap_or(Value::Null),
            AggState::Max(m) => m.map(Value::Double).unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            AggState::Percentile { histogram, q } => histogram
                .quantile(*q)
                .map(Value::Double)
                .unwrap_or(Value::Null),
            AggState::Distinct(set) => Value::Int(set.len() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_counts_everything_including_nulls() {
        let mut s = AggSpec::Count.new_state();
        s.update(&Value::Int(1));
        s.update(&Value::Null);
        s.update(&Value::from("x"));
        assert_eq!(s.finish(), Value::Int(3));
    }

    #[test]
    fn sum_min_max_avg() {
        let cells = [
            Value::Int(4),
            Value::Double(1.5),
            Value::Null,
            Value::from("skip"),
        ];
        let mut sum = AggSpec::Sum("c".into()).new_state();
        let mut min = AggSpec::Min("c".into()).new_state();
        let mut max = AggSpec::Max("c".into()).new_state();
        let mut avg = AggSpec::Avg("c".into()).new_state();
        for c in &cells {
            sum.update(c);
            min.update(c);
            max.update(c);
            avg.update(c);
        }
        assert_eq!(sum.finish(), Value::Double(5.5));
        assert_eq!(min.finish(), Value::Double(1.5));
        assert_eq!(max.finish(), Value::Double(4.0));
        assert_eq!(avg.finish(), Value::Double(2.75));
    }

    #[test]
    fn empty_aggregates_are_null_except_count() {
        assert_eq!(AggSpec::Count.new_state().finish(), Value::Int(0));
        assert_eq!(AggSpec::Min("c".into()).new_state().finish(), Value::Null);
        assert_eq!(AggSpec::Max("c".into()).new_state().finish(), Value::Null);
        assert_eq!(AggSpec::Avg("c".into()).new_state().finish(), Value::Null);
        assert_eq!(
            AggSpec::Sum("c".into()).new_state().finish(),
            Value::Double(0.0)
        );
    }

    #[test]
    fn merge_equals_single_pass() {
        // Property: splitting the stream and merging gives the same answer.
        let values: Vec<Value> = (0..100).map(|i| Value::Int(i * 3 - 50)).collect();
        for spec in [
            AggSpec::Count,
            AggSpec::Sum("c".into()),
            AggSpec::Min("c".into()),
            AggSpec::Max("c".into()),
            AggSpec::Avg("c".into()),
        ] {
            let mut whole = spec.new_state();
            for v in &values {
                whole.update(v);
            }
            let mut left = spec.new_state();
            let mut right = spec.new_state();
            for (i, v) in values.iter().enumerate() {
                if i % 2 == 0 {
                    left.update(v)
                } else {
                    right.update(v)
                }
            }
            left.merge(&right);
            assert_eq!(left.finish(), whole.finish(), "spec {spec:?}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = AggSpec::Min("c".into()).new_state();
        a.update(&Value::Int(5));
        let empty = AggSpec::Min("c".into()).new_state();
        a.merge(&empty);
        assert_eq!(a.finish(), Value::Double(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn kind_mismatch_panics() {
        let mut a = AggState::Count(1);
        a.merge(&AggState::Sum(1.0));
    }

    #[test]
    fn spec_columns() {
        assert_eq!(AggSpec::Count.column(), None);
        assert_eq!(AggSpec::Sum("x".into()).column(), Some("x"));
        assert_eq!(AggSpec::p99("lat").column(), Some("lat"));
        assert_eq!(AggSpec::CountDistinct("u".into()).column(), Some("u"));
    }

    #[test]
    fn percentile_state_merges_like_combined_stream() {
        let spec = AggSpec::p50("c");
        let mut left = spec.new_state();
        let mut right = spec.new_state();
        let mut whole = spec.new_state();
        for i in 0..1000i64 {
            let v = Value::Int(i);
            whole.update(&v);
            if i % 2 == 0 {
                left.update(&v)
            } else {
                right.update(&v)
            }
        }
        left.merge(&right);
        assert_eq!(left.finish(), whole.finish());
    }

    #[test]
    fn distinct_counts_each_value_once() {
        let mut s = AggSpec::CountDistinct("c".into()).new_state();
        for v in [
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::from("a"),
            Value::from("a"),
            Value::Double(1.5),
            Value::Double(1.5),
            Value::Null, // nulls don't count
        ] {
            s.update(&v);
        }
        assert_eq!(s.finish(), Value::Int(4));
    }

    #[test]
    fn distinct_merge_unions() {
        let spec = AggSpec::CountDistinct("c".into());
        let mut a = spec.new_state();
        let mut b = spec.new_state();
        a.update(&Value::Int(1));
        a.update(&Value::Int(2));
        b.update(&Value::Int(2));
        b.update(&Value::Int(3));
        a.merge(&b);
        assert_eq!(a.finish(), Value::Int(3));
    }

    #[test]
    fn empty_percentile_is_null() {
        assert_eq!(AggSpec::p50("c").new_state().finish(), Value::Null);
        assert_eq!(
            AggSpec::CountDistinct("c".into()).new_state().finish(),
            Value::Int(0)
        );
    }
}
