//! Vectorized leaf-local query execution.
//!
//! Same plan shape as [`crate::exec::execute`] — prune blocks, filter,
//! fold into per-group aggregate states — but predicates run as columnar
//! kernels over [`ColumnView`]s and u64-word selection vectors instead of
//! boxing one [`Value`] per cell:
//!
//! * integers and doubles filter over dense typed arrays
//!   ([`scan::sel_retain`]), nulls handled by the presence bitmap,
//! * string filters evaluate once per *dictionary entry*
//!   ([`scan::DictMask`]) and then compare packed ids — never
//!   materializing row strings; all-match/none-match dictionaries skip the
//!   id pass entirely,
//! * `Value` boxing only happens for **selected** rows, when folding group
//!   keys and aggregate inputs.
//!
//! Views are built straight from the encoded buffers, so mapped
//! (shm-resident) blocks are scanned in place. The row-wise executor stays
//! as the differential oracle: for every query both paths must produce
//! identical results, including scan statistics — see the tests here and
//! `tests/differential.rs`.

use std::collections::BTreeMap;
use std::collections::HashMap;

use scuba_columnstore::scan::{
    self, sel_all, sel_clear, sel_count, sel_for_each, sel_is_empty, DictMask,
};
use scuba_columnstore::{ColumnView, Result as StoreResult, RowBlock, Table, Value, TIME_COLUMN};

use crate::exec::LeafQueryResult;
use crate::expr::{cmp_ord, CmpOp, Filter};
use crate::query::{GroupKey, Query};

/// Rows folded per batch: selection words are walked in chunks this big so
/// the fold's working set (group-key lookups, aggregate updates) stays
/// cache-resident.
const BATCH_ROWS: usize = 1024;
const BATCH_WORDS: usize = BATCH_ROWS / 64;

/// Execute `query` over one leaf-local table fraction, vectorized.
/// Differentially equal to [`crate::exec::execute`].
pub fn execute_vectorized(table: &Table, query: &Query) -> StoreResult<LeafQueryResult> {
    debug_assert_eq!(table.name(), query.table);
    let mut result = LeafQueryResult::empty();
    let plan = crate::plan::plan_scan(table, query)?;
    result.blocks_pruned = plan.blocks_pruned;
    result.blocks_zonemap_pruned = plan.blocks_zonemap_pruned;
    result.blocks_scanned = plan.blocks.len() as u64;
    for block in &plan.blocks {
        scan_block(block, query, &mut result)?;
    }
    Ok(result)
}

/// Build (or fetch) the scan view for `name`; `None` when the block lacks
/// the column (reads as all-null).
fn cached_view<'a>(
    cache: &'a mut HashMap<String, Option<ColumnView>>,
    block: &RowBlock,
    name: &str,
) -> StoreResult<&'a Option<ColumnView>> {
    if !cache.contains_key(name) {
        let view = match block.column(name) {
            None => None,
            Some(col) => Some(ColumnView::build(col)?),
        };
        cache.insert(name.to_string(), view);
    }
    Ok(&cache[name])
}

/// How each aggregate reads its input during the fold.
enum AggInput<'a> {
    /// Count: the cell is ignored.
    Count,
    /// Column absent from this block: all-null input.
    Missing,
    /// Read the cell from a view (selected rows only).
    View(&'a ColumnView),
}

/// How the fold computes the inner (pre-bucket) group key.
enum GroupSource<'a> {
    /// No group-by, or the group column is absent: every row is `Null`.
    Constant,
    /// Dictionary column: per-entry keys precomputed once, rows looked up
    /// by id without materializing strings.
    Dict {
        view: &'a ColumnView,
        keys: Vec<GroupKey>,
    },
    /// Any other view: box the cell and convert.
    General(&'a ColumnView),
}

fn scan_block(block: &RowBlock, query: &Query, result: &mut LeafQueryResult) -> StoreResult<()> {
    let rows = block.row_count();
    if rows == 0 {
        return Ok(());
    }
    result.rows_scanned += rows as u64;

    let time_col = block
        .column(TIME_COLUMN)
        .expect("every block has a time column");
    let time_view = ColumnView::build(time_col)?;
    // Dense per-row timestamps with nulls as i64::MIN — the same
    // substitution the row-wise path makes for range tests and bucketing.
    // (TIME *filters* still see the real cell via the view's presence.)
    let times: Vec<i64> = match &time_view {
        ColumnView::Int64 {
            presence: None,
            values,
        } => values.clone(),
        _ => (0..rows)
            .map(|r| time_view.value(r).as_int().unwrap_or(i64::MIN))
            .collect(),
    };

    let mut cache: HashMap<String, Option<ColumnView>> = HashMap::new();
    cache.insert(TIME_COLUMN.to_string(), Some(time_view));

    // Selection = time range, then each filter, with an early exit the
    // moment nothing survives.
    let mut sel = sel_all(rows);
    let (from, to) = (query.time_from, query.time_to);
    scan::sel_retain(&mut sel, None, &times, |t| t >= from && t < to);
    for f in &query.filters {
        if sel_is_empty(&sel) {
            break;
        }
        match cached_view(&mut cache, block, &f.column)? {
            None => sel_clear(&mut sel),
            Some(view) => apply_filter(&mut sel, view, f),
        }
    }
    result.rows_matched += sel_count(&sel);
    if sel_is_empty(&sel) {
        return Ok(());
    }

    // Fold setup: resolve group and aggregate views from the cache, then
    // borrow them immutably for the whole fold.
    if let Some(g) = &query.group_by {
        cached_view(&mut cache, block, g)?;
    }
    for a in &query.aggregates {
        if let Some(c) = a.column() {
            cached_view(&mut cache, block, c)?;
        }
    }
    let group_source = match &query.group_by {
        None => GroupSource::Constant,
        Some(g) => match cache[g.as_str()].as_ref() {
            None => GroupSource::Constant,
            Some(view @ ColumnView::Dict { entries, .. }) => GroupSource::Dict {
                view,
                keys: entries.iter().map(|e| GroupKey::Str(e.clone())).collect(),
            },
            Some(view) => GroupSource::General(view),
        },
    };
    let agg_inputs: Vec<AggInput<'_>> = query
        .aggregates
        .iter()
        .map(|a| match a.column() {
            None => AggInput::Count,
            Some(c) => match cache[c].as_ref() {
                None => AggInput::Missing,
                Some(view) => AggInput::View(view),
            },
        })
        .collect();

    let groups: &mut BTreeMap<GroupKey, _> = &mut result.groups;
    let one = Value::Int(1);
    for (batch, words) in sel.chunks(BATCH_WORDS).enumerate() {
        let base = batch * BATCH_ROWS;
        sel_for_each(words, |r| {
            let row = base + r;
            let inner = match &group_source {
                GroupSource::Constant => GroupKey::Null,
                GroupSource::Dict { view, keys } => match view.dict_id(row) {
                    Some(id) => keys[id as usize].clone(),
                    None => GroupKey::Null,
                },
                GroupSource::General(view) => GroupKey::from_value(&view.value(row)),
            };
            let key = match query.bucket_secs {
                None => inner,
                Some(w) => {
                    let t = times[row];
                    GroupKey::Bucketed(t - t.rem_euclid(w), Box::new(inner))
                }
            };
            let states = groups
                .entry(key)
                .or_insert_with(|| query.aggregates.iter().map(|a| a.new_state()).collect());
            for (state, input) in states.iter_mut().zip(&agg_inputs) {
                match input {
                    AggInput::Count => state.update(&one),
                    AggInput::Missing => state.update(&Value::Null),
                    AggInput::View(view) => state.update(&view.value(row)),
                }
            }
        });
    }
    Ok(())
}

/// AND `sel` with one filter over a typed view, without boxing values.
/// Must decide exactly as [`Filter::matches`] over the boxed cell.
fn apply_filter(sel: &mut [u64], view: &ColumnView, f: &Filter) {
    let op = f.op;
    match view {
        ColumnView::Int64 { presence, values } => match &f.literal {
            Value::Int(b) => {
                let b = *b;
                scan::sel_retain(sel, presence.as_ref(), values, |v| {
                    cmp_ord(op, v.partial_cmp(&b))
                });
            }
            Value::Double(b) => {
                let b = *b;
                scan::sel_retain(sel, presence.as_ref(), values, |v| {
                    cmp_ord(op, (v as f64).partial_cmp(&b))
                });
            }
            _ => sel_clear(sel),
        },
        ColumnView::Double { presence, values } => match &f.literal {
            Value::Double(b) => {
                let b = *b;
                scan::sel_retain(sel, presence.as_ref(), values, |v| {
                    cmp_ord(op, v.partial_cmp(&b))
                });
            }
            Value::Int(b) => {
                let b = *b as f64;
                scan::sel_retain(sel, presence.as_ref(), values, |v| {
                    cmp_ord(op, v.partial_cmp(&b))
                });
            }
            _ => sel_clear(sel),
        },
        ColumnView::Dict {
            presence,
            ids,
            entries,
        } => match &f.literal {
            Value::Str(b) => {
                let mask = DictMask::build(entries, |e| match op {
                    CmpOp::Contains => e.contains(b.as_str()),
                    _ => cmp_ord(op, e.partial_cmp(b.as_str())),
                });
                if mask.none_match() {
                    sel_clear(sel);
                } else if mask.all_match() {
                    // Every present value matches: selection reduces to
                    // the presence test.
                    if let Some(p) = presence {
                        for (s, pw) in sel.iter_mut().zip(p.words()) {
                            *s &= pw;
                        }
                    }
                } else {
                    scan::sel_retain(sel, presence.as_ref(), ids, |id| mask.matches(id));
                }
            }
            _ => sel_clear(sel),
        },
        // String sets have no ordered encoding to exploit: evaluate the
        // row-wise predicate per selected row.
        ColumnView::StrSet(data) => {
            for (w, word) in sel.iter_mut().enumerate() {
                let mut keep = 0u64;
                let mut bits = *word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if f.matches(&data.get(w * 64 + b)) {
                        keep |= 1u64 << b;
                    }
                }
                *word = keep;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::exec::execute;
    use scuba_columnstore::Row;

    fn assert_same(table: &Table, q: &Query) {
        let row_wise = execute(table, q).unwrap();
        let vec_wise = execute_vectorized(table, q).unwrap();
        assert_eq!(row_wise, vec_wise, "query {q:?}");
    }

    /// Rows with every column type, nulls, and multiple sealed blocks.
    fn mixed_table() -> Table {
        let mut t = Table::new("t", 0);
        for epoch in 0..3i64 {
            for i in 0..50 {
                let n = epoch * 50 + i;
                let mut row = Row::at(epoch * 1000 + i);
                if n % 3 != 0 {
                    row.set("status", if n % 2 == 0 { 200i64 } else { 500 });
                }
                if n % 4 != 0 {
                    row.set("latency", n as f64 / 3.0);
                }
                if n % 5 != 4 {
                    row.set("host", format!("host-{}", n % 7));
                }
                if n % 6 == 0 {
                    row.set(
                        "tags",
                        Value::StrSet(vec![format!("t{}", n % 3), "common".into()]),
                    );
                }
                t.append(&row, 0).unwrap();
            }
            t.seal(0).unwrap();
        }
        // Leave some rows unsealed so the snapshot block is exercised.
        for i in 0..10i64 {
            t.append(&Row::at(3000 + i).with("status", 200i64), 0)
                .unwrap();
        }
        t
    }

    #[test]
    fn matches_row_wise_on_filters() {
        let t = mixed_table();
        for q in [
            Query::new("t", 0, 5000),
            Query::new("t", 0, 5000).filter(Filter::new("status", CmpOp::Eq, 500i64)),
            Query::new("t", 0, 5000).filter(Filter::new("status", CmpOp::Ne, 200i64)),
            Query::new("t", 0, 5000).filter(Filter::new("latency", CmpOp::Lt, 10.5f64)),
            Query::new("t", 0, 5000).filter(Filter::new("latency", CmpOp::Ge, 20i64)),
            Query::new("t", 0, 5000).filter(Filter::new("status", CmpOp::Le, 350.0f64)),
            Query::new("t", 0, 5000).filter(Filter::new("host", CmpOp::Eq, "host-3")),
            Query::new("t", 0, 5000).filter(Filter::new("host", CmpOp::Contains, "ost-5")),
            Query::new("t", 0, 5000).filter(Filter::new("host", CmpOp::Lt, "host-2")),
            Query::new("t", 0, 5000).filter(Filter::new("tags", CmpOp::Contains, "common")),
            Query::new("t", 0, 5000).filter(Filter::new("tags", CmpOp::Contains, "t1")),
            Query::new("t", 0, 5000).filter(Filter::new("nope", CmpOp::Eq, 1i64)),
            Query::new("t", 0, 5000).filter(Filter::new("host", CmpOp::Eq, 7i64)),
            Query::new("t", 0, 5000).filter(Filter::new(TIME_COLUMN, CmpOp::Lt, 25i64)),
            Query::new("t", 1000, 2050)
                .filter(Filter::new("status", CmpOp::Eq, 200i64))
                .filter(Filter::new("host", CmpOp::Ne, "host-1")),
        ] {
            assert_same(&t, &q);
        }
    }

    #[test]
    fn matches_row_wise_on_groups_and_aggregates() {
        let t = mixed_table();
        for q in [
            Query::new("t", 0, 5000).group_by("host"),
            Query::new("t", 0, 5000).group_by("status").aggregates(vec![
                AggSpec::Count,
                AggSpec::Avg("latency".into()),
                AggSpec::Max("latency".into()),
                AggSpec::Min(TIME_COLUMN.into()),
            ]),
            Query::new("t", 0, 5000).group_by("tags"),
            Query::new("t", 0, 5000).group_by("latency"),
            Query::new("t", 0, 5000).group_by("nope"),
            Query::new("t", 0, 5000)
                .bucket_secs(500)
                .group_by("host")
                .aggregates(vec![AggSpec::Count, AggSpec::Sum("status".into())]),
            Query::new("t", 0, 5000)
                .filter(Filter::new("status", CmpOp::Eq, 200i64))
                .bucket_secs(1000)
                .aggregates(vec![
                    AggSpec::p50("latency"),
                    AggSpec::CountDistinct("host".into()),
                ]),
        ] {
            assert_same(&t, &q);
        }
    }

    #[test]
    fn matches_row_wise_over_mapped_blocks() {
        let t = mixed_table();
        let mapped_blocks = t
            .blocks()
            .iter()
            .map(|b| std::sync::Arc::new(scan::remap_block(b).unwrap()))
            .collect();
        let tm = Table::from_blocks("t", mapped_blocks, 0);
        for q in [
            Query::new("t", 0, 5000)
                .filter(Filter::new("host", CmpOp::Contains, "ost-5"))
                .group_by("status")
                .aggregates(vec![AggSpec::Count, AggSpec::Avg("latency".into())]),
            Query::new("t", 0, 2050).filter(Filter::new("latency", CmpOp::Gt, 5.0f64)),
        ] {
            // Mapped vs heap backing must not change results either.
            let heap_sealed = Table::from_blocks("t", t.blocks().to_vec(), 0);
            assert_eq!(
                execute(&heap_sealed, &q).unwrap(),
                execute_vectorized(&tm, &q).unwrap()
            );
            assert_same(&tm, &q);
        }
    }

    #[test]
    fn pruning_stats_match_row_wise() {
        let t = mixed_table();
        // Time pruning and zone pruning paths both exercised.
        for q in [
            Query::new("t", 1000, 1050),
            Query::new("t", 0, 5000).filter(Filter::new("status", CmpOp::Gt, 1000i64)),
            Query::new("t", 0, 5000).filter(Filter::new("host", CmpOp::Eq, "zzz")),
        ] {
            let a = execute(&t, &q).unwrap();
            let b = execute_vectorized(&t, &q).unwrap();
            assert_eq!(a.blocks_pruned, b.blocks_pruned);
            assert_eq!(a.blocks_zonemap_pruned, b.blocks_zonemap_pruned);
            assert_eq!(a.blocks_scanned, b.blocks_scanned);
            assert_eq!(a.rows_scanned, b.rows_scanned);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn float_aggregation_is_bit_identical() {
        // Same fold order => identical float accumulation, not just close.
        let mut t = Table::new("t", 0);
        for i in 0..1000i64 {
            t.append(
                &Row::at(i).with("x", (i as f64) * 0.1 + 1e-7 * ((i * 37) % 11) as f64),
                0,
            )
            .unwrap();
        }
        t.seal(0).unwrap();
        let q = Query::new("t", 0, 1000)
            .aggregates(vec![AggSpec::Sum("x".into()), AggSpec::Avg("x".into())]);
        let a = execute(&t, &q).unwrap();
        let b = execute_vectorized(&t, &q).unwrap();
        assert_eq!(a, b);
    }
}
