//! Row filters: `column <op> literal` predicates.

use scuba_columnstore::Value;

/// Comparison operators supported in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Substring match (strings only).
    Contains,
}

/// One predicate over a named column. Null cells never match any filter
/// (SQL-ish semantics), including `Ne`.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// Column the predicate reads.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub literal: Value,
}

impl Filter {
    /// Build a filter.
    pub fn new(column: impl Into<String>, op: CmpOp, literal: impl Into<Value>) -> Filter {
        Filter {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    /// Evaluate the predicate against one cell.
    pub fn matches(&self, cell: &Value) -> bool {
        match (cell, &self.literal) {
            (Value::Null, _) => false,
            (Value::Int(a), Value::Int(b)) => cmp_ord(self.op, a.partial_cmp(b)),
            (Value::Double(a), Value::Double(b)) => cmp_ord(self.op, a.partial_cmp(b)),
            (Value::Int(a), Value::Double(b)) => cmp_ord(self.op, (*a as f64).partial_cmp(b)),
            (Value::Double(a), Value::Int(b)) => cmp_ord(self.op, a.partial_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => match self.op {
                CmpOp::Contains => a.contains(b.as_str()),
                _ => cmp_ord(self.op, a.partial_cmp(b)),
            },
            // Set semantics: Contains = membership, Eq/Ne = set equality
            // (both sides normalized).
            (Value::StrSet(set), Value::Str(needle)) => match self.op {
                CmpOp::Contains => set.binary_search(needle).is_ok(),
                _ => false,
            },
            (Value::StrSet(a), Value::StrSet(b)) => match self.op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                _ => false,
            },
            // Cross-type comparisons (other than numeric widening) never match.
            _ => false,
        }
    }
}

pub(crate) fn cmp_ord(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    let Some(ord) = ord else {
        return false; // NaN comparisons
    };
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
        CmpOp::Contains => false, // only meaningful for strings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_comparisons() {
        let f = Filter::new("x", CmpOp::Ge, 10i64);
        assert!(f.matches(&Value::Int(10)));
        assert!(f.matches(&Value::Int(11)));
        assert!(!f.matches(&Value::Int(9)));
        assert!(Filter::new("x", CmpOp::Ne, 5i64).matches(&Value::Int(6)));
        assert!(!Filter::new("x", CmpOp::Ne, 5i64).matches(&Value::Int(5)));
    }

    #[test]
    fn numeric_widening() {
        assert!(Filter::new("x", CmpOp::Lt, 2.5f64).matches(&Value::Int(2)));
        assert!(Filter::new("x", CmpOp::Gt, 2i64).matches(&Value::Double(2.5)));
    }

    #[test]
    fn string_ops() {
        let eq = Filter::new("sev", CmpOp::Eq, "error");
        assert!(eq.matches(&Value::from("error")));
        assert!(!eq.matches(&Value::from("warn")));
        let contains = Filter::new("msg", CmpOp::Contains, "time");
        assert!(contains.matches(&Value::from("request timed out; timeout=30")));
        assert!(!contains.matches(&Value::from("ok")));
        // Lexicographic ordering works for strings too.
        assert!(Filter::new("s", CmpOp::Lt, "b").matches(&Value::from("a")));
    }

    #[test]
    fn nulls_never_match() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Contains] {
            assert!(!Filter::new("x", op, 1i64).matches(&Value::Null));
        }
    }

    #[test]
    fn cross_type_never_matches() {
        assert!(!Filter::new("x", CmpOp::Eq, "1").matches(&Value::Int(1)));
        assert!(!Filter::new("x", CmpOp::Eq, 1i64).matches(&Value::from("1")));
        assert!(!Filter::new("x", CmpOp::Contains, 1i64).matches(&Value::Int(1)));
    }

    #[test]
    fn set_membership_and_equality() {
        let cell = Value::set(["android", "beta", "us"]);
        assert!(Filter::new("tags", CmpOp::Contains, "beta").matches(&cell));
        assert!(!Filter::new("tags", CmpOp::Contains, "ios").matches(&cell));
        // Substring of an element is NOT membership.
        assert!(!Filter::new("tags", CmpOp::Contains, "bet").matches(&cell));
        // Set equality is order-insensitive via normalization.
        let same = Value::set(["us", "android", "beta"]);
        assert!(Filter {
            column: "tags".into(),
            op: CmpOp::Eq,
            literal: same.clone()
        }
        .matches(&cell));
        assert!(Filter {
            column: "tags".into(),
            op: CmpOp::Ne,
            literal: Value::set(["other"])
        }
        .matches(&cell));
        // Ordering comparisons are undefined for sets.
        assert!(!Filter {
            column: "tags".into(),
            op: CmpOp::Lt,
            literal: same
        }
        .matches(&cell));
    }

    #[test]
    fn nan_comparisons_false() {
        let f = Filter::new("x", CmpOp::Le, f64::NAN);
        assert!(!f.matches(&Value::Double(1.0)));
        let f = Filter::new("x", CmpOp::Eq, 1.0f64);
        assert!(!f.matches(&Value::Double(f64::NAN)));
    }
}
