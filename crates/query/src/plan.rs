//! Scan planning shared by the row-wise and vectorized executors: block
//! selection by time range (§2.1 min/max pruning) plus zone-map pruning
//! on filter columns.
//!
//! Both executors MUST plan through [`plan_scan`] so their pruning
//! decisions — and therefore `rows_scanned` / `blocks_*` accounting — are
//! identical; the differential suite relies on that.
//!
//! Zone pruning is conservative: a block is dropped only when its
//! statistics *prove* no row can satisfy some filter (filters conjoin, so
//! one impossible filter kills the block). Blocks without zone maps (disk
//! recovery, legacy images) simply scan.

use std::sync::Arc;

use scuba_columnstore::{ColumnType, Result as StoreResult, RowBlock, Table, Value, ZoneStats};

use crate::expr::{CmpOp, Filter};
use crate::query::Query;

/// The blocks a query will scan, plus pruning accounting.
#[derive(Debug)]
pub struct ScanPlan {
    /// Surviving blocks (may include the unsealed-rows snapshot).
    pub blocks: Vec<Arc<RowBlock>>,
    /// Sealed blocks skipped by the min/max-timestamp test.
    pub blocks_pruned: u64,
    /// Blocks skipped by zone-map statistics on filter columns.
    pub blocks_zonemap_pruned: u64,
}

/// Select the blocks `query` must scan over `table`.
pub fn plan_scan(table: &Table, query: &Query) -> StoreResult<ScanPlan> {
    let total_sealed = table.blocks().len() as u64;
    let candidates = table.blocks_in_range(query.time_from, query.time_to)?;
    // One pass over the sealed list re-running the same overlap test
    // `blocks_in_range` applied — O(blocks), replacing the old
    // O(blocks²) Arc::ptr_eq cross-scan. The snapshot block
    // `blocks_in_range` may append is not a sealed block and never counts
    // as time-pruned.
    let sealed_in_range = table
        .blocks()
        .iter()
        .filter(|b| b.overlaps_time(query.time_from, query.time_to))
        .count() as u64;
    let mut plan = ScanPlan {
        blocks: Vec::with_capacity(candidates.len()),
        blocks_pruned: total_sealed.saturating_sub(sealed_in_range),
        blocks_zonemap_pruned: 0,
    };
    for block in candidates {
        if query.filters.iter().any(|f| filter_prunes_block(&block, f)) {
            plan.blocks_zonemap_pruned += 1;
        } else {
            plan.blocks.push(block);
        }
    }
    Ok(plan)
}

/// True if `filter` provably matches no row of `block`.
pub fn filter_prunes_block(block: &RowBlock, filter: &Filter) -> bool {
    // A column the block lacks reads as all-null, and nulls never match.
    let Some(idx) = block.schema().index_of(&filter.column) else {
        return true;
    };
    let col_ty = block.schema().column(idx).expect("index from schema").1;
    // Statically impossible (cell type, literal type, op) combinations.
    if !type_can_match(col_ty, &filter.literal, filter.op) {
        return true;
    }
    // Range pruning needs statistics.
    let Some(stats) = block.zones().and_then(|z| z.get(&filter.column)) else {
        return false;
    };
    match stats {
        ZoneStats::AllNull => true,
        // Same-type comparisons only: widening an i64 zone bound to f64
        // (or vice versa) rounds for |v| > 2^53, so cross-type numeric
        // filters scan rather than risk an unsound prune.
        ZoneStats::Int { min, max } => match &filter.literal {
            Value::Int(b) => !range_can_match(filter.op, min, max, b),
            _ => false,
        },
        ZoneStats::Double { min, max } => match &filter.literal {
            Value::Double(b) => !range_can_match(filter.op, min, max, b),
            _ => false,
        },
        ZoneStats::Str { min, max } => match (&filter.literal, filter.op) {
            // Substrings aren't bounded by lexicographic min/max.
            (Value::Str(_), CmpOp::Contains) => false,
            (Value::Str(b), op) => !range_can_match(op, min, max, b),
            _ => false,
        },
    }
}

/// Can a cell of `cell_ty` ever satisfy `op literal`? Mirrors the type
/// dispatch of [`Filter::matches`].
fn type_can_match(cell_ty: ColumnType, literal: &Value, op: CmpOp) -> bool {
    match cell_ty {
        // Numeric cells compare (with widening) against numeric literals;
        // Contains is never true for numbers.
        ColumnType::Int64 | ColumnType::Double => {
            matches!(literal, Value::Int(_) | Value::Double(_)) && op != CmpOp::Contains
        }
        ColumnType::Str => matches!(literal, Value::Str(_)),
        ColumnType::StrSet => match literal {
            Value::Str(_) => op == CmpOp::Contains,
            Value::StrSet(_) => matches!(op, CmpOp::Eq | CmpOp::Ne),
            _ => false,
        },
    }
}

/// Given present values confined to `[min, max]`, can `v op b` hold for
/// some v? (`PartialOrd` so a NaN literal conservatively reports
/// "cannot match" for the ordered ops, which is exact: NaN comparisons
/// are always false.)
fn range_can_match<T: PartialOrd + ?Sized>(op: CmpOp, min: &T, max: &T, b: &T) -> bool {
    match op {
        CmpOp::Eq => min <= b && b <= max,
        CmpOp::Ne => !(min == b && max == b),
        CmpOp::Lt => min < b,
        CmpOp::Le => min <= b,
        CmpOp::Gt => max > b,
        CmpOp::Ge => max >= b,
        CmpOp::Contains => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scuba_columnstore::Row;

    fn table_with_epochs() -> Table {
        // 4 sealed blocks: codes 0..10, 10..20, 20..30, 30..40; hosts only
        // in the last block.
        let mut t = Table::new("t", 0);
        for epoch in 0..4i64 {
            for i in 0..10 {
                let mut row = Row::at(epoch * 100 + i).with("code", epoch * 10 + i);
                if epoch == 3 {
                    row.set("host", format!("h{i}"));
                }
                t.append(&row, 0).unwrap();
            }
            t.seal(0).unwrap();
        }
        t
    }

    #[test]
    fn time_pruning_counts_in_one_pass() {
        let t = table_with_epochs();
        let q = Query::new("t", 100, 150);
        let plan = plan_scan(&t, &q).unwrap();
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks_pruned, 3);
        assert_eq!(plan.blocks_zonemap_pruned, 0);
    }

    #[test]
    fn zone_maps_prune_disjoint_ranges() {
        let t = table_with_epochs();
        // code >= 35 lives only in the last block.
        let q = Query::new("t", 0, 1000).filter(Filter::new("code", CmpOp::Ge, 35i64));
        let plan = plan_scan(&t, &q).unwrap();
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks_pruned, 0);
        assert_eq!(plan.blocks_zonemap_pruned, 3);
        // Eq out of every range prunes everything.
        let q = Query::new("t", 0, 1000).filter(Filter::new("code", CmpOp::Eq, 99i64));
        let plan = plan_scan(&t, &q).unwrap();
        assert!(plan.blocks.is_empty());
        assert_eq!(plan.blocks_zonemap_pruned, 4);
    }

    #[test]
    fn missing_column_and_cross_type_prune() {
        let t = table_with_epochs();
        // `host` exists only in the last block; the other three prune.
        let q = Query::new("t", 0, 1000).filter(Filter::new("host", CmpOp::Eq, "h3"));
        let plan = plan_scan(&t, &q).unwrap();
        assert_eq!(plan.blocks.len(), 1);
        assert_eq!(plan.blocks_zonemap_pruned, 3);
        // A string literal can never match an int column: all blocks prune.
        let q = Query::new("t", 0, 1000).filter(Filter::new("code", CmpOp::Eq, "nope"));
        let plan = plan_scan(&t, &q).unwrap();
        assert!(plan.blocks.is_empty());
    }

    #[test]
    fn blocks_without_zones_are_not_pruned() {
        let t = table_with_epochs();
        // Strip zones by round-tripping blocks through from_parts.
        let stripped: Vec<_> = t
            .blocks()
            .iter()
            .map(|b| {
                Arc::new(
                    RowBlock::from_parts(*b.header(), b.schema().clone(), b.columns().to_vec())
                        .unwrap(),
                )
            })
            .collect();
        let t2 = Table::from_blocks("t", stripped, 0);
        let q = Query::new("t", 0, 1000).filter(Filter::new("code", CmpOp::Eq, 99i64));
        let plan = plan_scan(&t2, &q).unwrap();
        // Type matches and no stats: every block scans.
        assert_eq!(plan.blocks.len(), 4);
        assert_eq!(plan.blocks_zonemap_pruned, 0);
    }

    #[test]
    fn range_logic_is_sound_at_bounds() {
        // [10, 20] zone.
        for (op, b, can) in [
            (CmpOp::Eq, 10, true),
            (CmpOp::Eq, 20, true),
            (CmpOp::Eq, 9, false),
            (CmpOp::Eq, 21, false),
            (CmpOp::Lt, 10, false),
            (CmpOp::Lt, 11, true),
            (CmpOp::Le, 9, false),
            (CmpOp::Le, 10, true),
            (CmpOp::Gt, 20, false),
            (CmpOp::Gt, 19, true),
            (CmpOp::Ge, 21, false),
            (CmpOp::Ge, 20, true),
            (CmpOp::Ne, 15, true),
        ] {
            assert_eq!(range_can_match(op, &10, &20, &b), can, "{op:?} {b}");
        }
        // Ne prunes only a constant block equal to the literal.
        assert!(!range_can_match(CmpOp::Ne, &7, &7, &7));
        assert!(range_can_match(CmpOp::Ne, &7, &7, &8));
    }
}
