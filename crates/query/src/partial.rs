//! Aggregator-side merging of leaf partial results.
//!
//! "The aggregator servers distribute a query to all leaves and then
//! aggregate the results as they arrive from the leaves" (§2). Leaves in
//! memory recovery do not answer (§4.3), and "Scuba can and does return
//! partial query results when not all servers are available" (§1) — so a
//! merged result reports the fraction of leaves that contributed, which
//! is exactly the "98% of data online" number the rollover dashboard and
//! availability experiments track.

use std::collections::BTreeMap;

use scuba_columnstore::Value;

use crate::agg::AggSpec;
use crate::exec::LeafQueryResult;
use crate::query::GroupKey;

/// The aggregator's merged answer.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedResult {
    /// Final values per group, one per requested aggregate, sorted by key.
    pub groups: BTreeMap<GroupKey, Vec<Value>>,
    /// Leaves the query was distributed to.
    pub leaves_total: usize,
    /// Leaves that returned a partial result.
    pub leaves_responded: usize,
    /// Total rows matched across responding leaves.
    pub rows_matched: u64,
    /// Total rows scanned across responding leaves.
    pub rows_scanned: u64,
}

impl MergedResult {
    /// Fraction of leaves that contributed (1.0 = complete answer).
    pub fn availability(&self) -> f64 {
        if self.leaves_total == 0 {
            1.0
        } else {
            self.leaves_responded as f64 / self.leaves_total as f64
        }
    }

    /// True if every leaf answered.
    pub fn is_complete(&self) -> bool {
        self.leaves_responded == self.leaves_total
    }

    /// Final values for the ungrouped result (group key `Null`).
    pub fn totals(&self) -> Option<&[Value]> {
        self.groups.get(&GroupKey::Null).map(Vec::as_slice)
    }
}

/// Merge leaf partials into a final result. `leaves_total` is how many
/// leaves the query was sent to; `partials` holds the answers that came
/// back (length ≤ `leaves_total`). `aggregates` must be the query's
/// aggregate list.
pub fn merge_partials(
    aggregates: &[AggSpec],
    leaves_total: usize,
    partials: &[LeafQueryResult],
) -> MergedResult {
    assert!(
        partials.len() <= leaves_total,
        "more answers than leaves asked"
    );
    let mut states: BTreeMap<GroupKey, Vec<crate::agg::AggState>> = BTreeMap::new();
    let mut rows_matched = 0;
    let mut rows_scanned = 0;
    for partial in partials {
        rows_matched += partial.rows_matched;
        rows_scanned += partial.rows_scanned;
        for (key, leaf_states) in &partial.groups {
            let merged = states
                .entry(key.clone())
                .or_insert_with(|| aggregates.iter().map(|a| a.new_state()).collect());
            for (m, l) in merged.iter_mut().zip(leaf_states) {
                m.merge(l);
            }
        }
    }
    MergedResult {
        groups: states
            .into_iter()
            .map(|(k, sts)| (k, sts.iter().map(|s| s.finish()).collect()))
            .collect(),
        leaves_total,
        leaves_responded: partials.len(),
        rows_matched,
        rows_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::Query;
    use scuba_columnstore::{Row, Table};

    fn leaf_table(offset: i64, rows: i64) -> Table {
        let mut t = Table::new("t", 0);
        for i in 0..rows {
            t.append(
                &Row::at(offset + i)
                    .with("v", offset + i)
                    .with("host", format!("h{}", (offset + i) % 2)),
                0,
            )
            .unwrap();
        }
        t.seal(0).unwrap();
        t
    }

    #[test]
    fn merging_equals_single_leaf_execution() {
        // Split the same data across 4 "leaves": merged answer must match
        // a single table holding everything.
        let q = Query::new("t", 0, 400).group_by("host").aggregates(vec![
            AggSpec::Count,
            AggSpec::Sum("v".into()),
            AggSpec::Min("v".into()),
        ]);
        let whole = leaf_table(0, 400);
        let whole_result = execute(&whole, &q).unwrap();
        let whole_merged = merge_partials(&q.aggregates, 1, &[whole_result]);

        let partials: Vec<_> = (0..4)
            .map(|i| execute(&leaf_table(i * 100, 100), &q).unwrap())
            .collect();
        let merged = merge_partials(&q.aggregates, 4, &partials);

        assert_eq!(merged.groups, whole_merged.groups);
        assert_eq!(merged.rows_matched, 400);
        assert!(merged.is_complete());
        assert_eq!(merged.availability(), 1.0);
    }

    #[test]
    fn missing_leaves_reported_as_partial() {
        let q = Query::new("t", 0, 200);
        let partials: Vec<_> = (0..2)
            .map(|i| execute(&leaf_table(i * 100, 100), &q).unwrap())
            .collect();
        // 2 of 8 leaves answered (6 restarting).
        let merged = merge_partials(&q.aggregates, 8, &partials);
        assert!(!merged.is_complete());
        assert!((merged.availability() - 0.25).abs() < 1e-9);
        assert_eq!(merged.rows_matched, 200);
        assert_eq!(merged.totals().unwrap()[0], Value::Int(200));
    }

    #[test]
    fn zero_leaves_is_vacuously_complete() {
        let merged = merge_partials(&[AggSpec::Count], 0, &[]);
        assert_eq!(merged.availability(), 1.0);
        assert!(merged.groups.is_empty());
    }

    #[test]
    fn empty_partials_merge_cleanly() {
        let merged = merge_partials(
            &[AggSpec::Count],
            3,
            &[LeafQueryResult::empty(), LeafQueryResult::empty()],
        );
        assert_eq!(merged.leaves_responded, 2);
        assert!(merged.groups.is_empty());
        assert_eq!(merged.totals(), None);
    }

    #[test]
    #[should_panic(expected = "more answers than leaves")]
    fn over_reporting_panics() {
        merge_partials(
            &[AggSpec::Count],
            1,
            &[LeafQueryResult::empty(), LeafQueryResult::empty()],
        );
    }
}
